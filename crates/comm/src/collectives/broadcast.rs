//! Binomial-tree broadcast.
//!
//! Ranks are renumbered relative to the root; in ⌈log₂P⌉ rounds the set of
//! ranks holding the data doubles. Each rank receives at most once and
//! sends to at most ⌈log₂P⌉ children.

use crate::communicator::Communicator;
use crate::error::CommError;
use crate::message::CommData;
use crate::trace::OpKind;
use beatnik_telemetry::CommOp;

/// Broadcast `root`'s buffer to all ranks. The root passes `Some(data)`,
/// all other ranks pass `None`; every rank returns the full buffer.
/// A group failure, revocation, or the receive deadline surfaces as a
/// `CommError`.
///
/// # Panics
/// Panics if the root passes `None` or a non-root passes `Some` (a
/// collective-contract violation).
pub fn broadcast<T: CommData + Clone + Sync>(
    comm: &Communicator,
    root: usize,
    data: Option<Vec<T>>,
) -> Result<Vec<T>, CommError> {
    comm.coll_begin(OpKind::Broadcast);
    let mut span = comm.telemetry().op(CommOp::Broadcast);
    span.peer(root);
    comm.check_group_alive()?;
    let p = comm.size();
    let r = comm.rank();
    assert!(root < p, "broadcast: root {root} out of range");
    if r == root {
        assert!(data.is_some(), "broadcast: root must supply data");
    } else {
        assert!(data.is_none(), "broadcast: non-root must pass None");
    }
    if p == 1 {
        let buf = data.expect("broadcast: root must supply data");
        span.bytes(std::mem::size_of_val(buf.as_slice()) as u64);
        return Ok(buf);
    }

    let vrank = (r + p - root) % p;
    let mut buf: Option<Vec<T>> = data;

    // Receive phase: the lowest set bit of vrank identifies the parent.
    if vrank != 0 {
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let parent = ((vrank - mask) + root) % p;
                buf = Some(comm.try_coll_recv::<T>(parent, mask as u64, "broadcast")?);
                break;
            }
            mask <<= 1;
        }
    }
    let buf = buf.expect("broadcast: internal protocol error");

    // Send phase: forward to children at decreasing strides.
    let mut mask = {
        // Highest power of two below p, halved down from vrank's position.
        let mut m = 1usize;
        while m < p {
            m <<= 1;
        }
        m >>= 1;
        m
    };
    // One Arc fans the buffer out to every child without a sender-side
    // clone per child; the last receiver to claim it takes the
    // allocation, so a forwarding rank clones at most once (below, if a
    // child still holds a reference when we reclaim our copy).
    let shared = std::sync::Arc::new(buf);
    while mask > 0 {
        if vrank & (mask - 1) == 0 && vrank | mask < p && vrank & mask == 0 {
            let child = ((vrank | mask) + root) % p;
            comm.coll_send_shared(child, mask as u64, &shared, OpKind::Broadcast);
        }
        mask >>= 1;
    }
    span.bytes(std::mem::size_of_val(shared.as_slice()) as u64);
    Ok(std::sync::Arc::try_unwrap(shared).unwrap_or_else(|arc| (*arc).clone()))
}

#[cfg(test)]
mod tests {
    use crate::trace::OpKind;
    use crate::world::World;

    #[test]
    fn broadcast_from_every_root_every_size() {
        for p in [1usize, 2, 3, 4, 5, 8, 9] {
            for root in 0..p {
                let out = World::builder(p).run(move |c| {
                    let data = if c.rank() == root {
                        Some(vec![root as f64, 42.0])
                    } else {
                        None
                    };
                    c.broadcast(root, data)
                });
                for v in out {
                    assert_eq!(v, vec![root as f64, 42.0], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn broadcast_message_budget_is_logarithmic() {
        let (_, trace) = World::builder(8).run_traced(|c| {
            let data = if c.rank() == 0 { Some(vec![1u8; 10]) } else { None };
            let _ = c.broadcast(0, data);
        });
        // Total messages in a binomial bcast = P - 1.
        assert_eq!(trace.total(OpKind::Broadcast).messages, 7);
        // Root sends log2(P) messages.
        assert_eq!(trace.rank(0).get(OpKind::Broadcast).messages, 3);
    }

    #[test]
    fn consecutive_broadcasts_keep_order() {
        World::builder(4).run(|c| {
            for i in 0..10u64 {
                let data = if c.rank() == 1 { Some(vec![i]) } else { None };
                let v = c.broadcast(1, data);
                assert_eq!(v, vec![i]);
            }
        });
    }

    #[test]
    #[should_panic(expected = "root must supply data")]
    fn root_without_data_panics() {
        World::builder(1).run(|c| {
            let _ = c.broadcast::<u8>(0, None);
        });
    }
}
