//! # beatnik-fft — serial fast Fourier transforms, from scratch
//!
//! The paper's Beatnik delegates its low-order solver's transforms to
//! heFFTe. This reproduction implements the node-local FFT layer itself:
//!
//! * [`Complex`] — a plain `f64` complex number type (no external crates).
//! * [`Fft`] — a planned 1D complex-to-complex transform: iterative
//!   radix-2 Cooley–Tukey with precomputed twiddles for power-of-two
//!   sizes, and Bluestein's chirp-z algorithm for every other size.
//! * [`Fft2d`] — row–column 2D transforms over row-major buffers.
//! * [`spectral`] — wavenumber grids and the Fourier-multiplier operators
//!   the Z-Model's low-order solver needs: spectral derivatives, spectral
//!   Laplacians, and the flat-sheet Birkhoff–Rott normal-velocity (Riesz
//!   transform pair).
//!
//! Correctness is anchored to a naive O(n²) DFT ([`dft::dft_naive`]) in
//! tests, plus roundtrip, Parseval, linearity, and shift-theorem property
//! tests.
//!
//! ## Example
//!
//! ```
//! use beatnik_fft::{Complex, Fft};
//!
//! let fft = Fft::new(8);
//! let mut data: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
//! let orig = data.clone();
//! fft.forward(&mut data);
//! fft.inverse(&mut data);
//! for (a, b) in data.iter().zip(&orig) {
//!     assert!((*a - *b).abs() < 1e-12);
//! }
//! ```

pub mod bluestein;
pub mod complex;
pub mod dft;
pub mod fft2d;
mod kernel;
pub mod plan;
pub mod real;
pub mod spectral;

pub use complex::Complex;
pub use fft2d::Fft2d;
pub use plan::Fft;
pub use real::{rfft_pair, RealFft};
