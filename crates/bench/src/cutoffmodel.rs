//! Performance model of the high-order cutoff solver at paper scale,
//! counting what `beatnik_core::br::CutoffBrSolver` does per step:
//! 3 RK evaluations × (migrate → halo → neighbor build → pair forces →
//! return), with load imbalance taken from *measured* point
//! distributions of real scaled runs.

use beatnik_model::{ComputeModel, Machine, NetworkModel};

/// Bytes of one migrating point (`SurfacePoint`: pos + payload + ids).
const POINT_BYTES: f64 = 56.0;
/// Bytes of one returned result (`PointResult`).
const RESULT_BYTES: f64 = 32.0;
/// Derivative evaluations per RK3 step.
const EVALS_PER_STEP: f64 = 3.0;
/// `alltoallv` rounds per evaluation (migrate, halo, return).
const EXCHANGES_PER_EVAL: f64 = 3.0;
/// Effective per-message cost of a zero-byte (empty-block) exchange
/// message — dense `alltoallv` sends empties to non-neighbors.
const EMPTY_MSG_OVERHEAD: f64 = 8.0e-6;
/// Neighbor-list construction costs this fraction of the pair-force
/// work (grid binning inspects ~2-3 candidates per accepted neighbor,
/// at a few bytes each).
const BUILD_FRACTION: f64 = 0.3;

/// Cutoff-solver cost model. `domain_area(ranks)` returns the x/y area of
/// the spatial domain at a rank count: constant for strong scaling,
/// growing ∝ P for constant-density weak scaling.
pub struct CutoffModel {
    machine: Machine,
    compute: ComputeModel,
    /// Cutoff radius.
    pub cutoff: f64,
    /// Fraction of points that change spatial owner per evaluation.
    pub migrate_fraction: f64,
}

impl CutoffModel {
    /// Model with the paper's defaults.
    pub fn new(machine: &Machine) -> Self {
        CutoffModel {
            machine: machine.clone(),
            compute: ComputeModel::new(machine),
            cutoff: 0.5,
            migrate_fraction: 0.03,
        }
    }

    /// Interactions per point at surface density `sigma` (points per unit
    /// x/y area): the interface is a quasi-2D point set, so a cutoff disc
    /// of radius `c` captures `σ·π·c²` neighbors.
    fn pairs_per_point(&self, sigma: f64) -> f64 {
        sigma * std::f64::consts::PI * self.cutoff * self.cutoff
    }

    /// Ghost points a rank imports: the density times the area of the
    /// cutoff-wide frame around its region (side `s`).
    fn ghosts_per_rank(&self, sigma: f64, region_side: f64) -> f64 {
        let s = region_side;
        let c = self.cutoff;
        sigma * ((s + 2.0 * c) * (s + 2.0 * c) - s * s).max(0.0)
    }

    /// Per-step time for `total_points` on a `domain_area` x/y domain
    /// over `ranks` ranks, with load-imbalance factor `lambda`
    /// (max-over-mean per-rank points, 1.0 = balanced).
    pub fn step_time(
        &self,
        total_points: f64,
        domain_area: f64,
        ranks: usize,
        lambda: f64,
    ) -> f64 {
        let sigma = total_points / domain_area;
        let per_rank = total_points / ranks as f64;
        let region_side = (domain_area / ranks as f64).sqrt();

        // Compute: pair forces + neighbor build, scaled by imbalance
        // (the slowest rank gates the step).
        let pairs = per_rank * self.pairs_per_point(sigma) * lambda;
        let force = self.compute.br_pair_time(pairs);
        let build = force * BUILD_FRACTION;

        // Communication per evaluation.
        let net = NetworkModel::new(&self.machine, ranks);
        let ghosts = self.ghosts_per_rank(sigma, region_side);
        let halo_bytes = ghosts * POINT_BYTES;
        let migrate_bytes = self.migrate_fraction * per_rank * POINT_BYTES;
        let return_bytes = per_rank * RESULT_BYTES;
        let volume_time = (halo_bytes + migrate_bytes + return_bytes) / net.effective_bandwidth();
        // Neighbor messages carry data (≈ 8 overlapping regions + fan);
        // the rest of the dense alltoallv is empty messages.
        let neighbor_msgs = 8.0f64.min((ranks - 1) as f64);
        let latency = EXCHANGES_PER_EVAL
            * (neighbor_msgs * (net.latency() + net.overhead())
                + (ranks.saturating_sub(1) as f64) * EMPTY_MSG_OVERHEAD);

        EVALS_PER_STEP * (force + build + volume_time + latency)
    }

    /// Figure-5 configuration: weak scaling at the paper's 768² points
    /// per GPU with cutoff 0.2 and constant point density (each GPU adds
    /// a 3×3 tile of interface area — the reading under which per-rank
    /// work is constant, as the paper's flat measured curve requires).
    pub fn weak_step_time(&self, ranks: usize) -> f64 {
        let per_gpu = 768.0 * 768.0;
        let total = per_gpu * ranks as f64;
        let area = 9.0 * ranks as f64;
        // Multi-mode case: negligible imbalance (paper §5.3).
        self.step_time(total, area, ranks, 1.02)
    }

    /// Figure-8 configuration: strong scaling of the paper's 512²
    /// single-mode problem on the fixed (−3,3)² domain, with measured
    /// imbalance factors per rank count.
    pub fn strong_step_time(&self, ranks: usize, lambda: f64) -> f64 {
        self.step_time(512.0 * 512.0, 36.0, ranks, lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_model::Machine;

    fn model() -> CutoffModel {
        CutoffModel::new(&Machine::lassen())
    }

    #[test]
    fn weak_scaling_is_nearly_flat() {
        // Paper §5.3: "only modest (approximately 20%) increases in
        // runtime" from 4 to 1024 GPUs, a 256x problem growth.
        let mut m = model();
        m.cutoff = 0.2;
        let t4 = m.weak_step_time(4);
        let t1024 = m.weak_step_time(1024);
        let growth = t1024 / t4;
        assert!(
            growth > 1.0 && growth < 1.6,
            "cutoff weak growth {growth} should be modest"
        );
    }

    #[test]
    fn strong_scaling_speeds_up_then_turns_over() {
        // Paper §5.4: 3.3x speedup from 4 to 64 GPUs (21% efficiency);
        // modest decline beyond.
        let m = model();
        // Imbalance factors in the measured range of the single-mode run.
        let lambda = |p: usize| 1.0 + 0.08 * (p as f64).log2();
        let t4 = m.strong_step_time(4, lambda(4));
        let t64 = m.strong_step_time(64, lambda(64));
        let t256 = m.strong_step_time(256, lambda(256));
        let speedup = t4 / t64;
        assert!(speedup > 2.0 && speedup < 6.0, "4->64 speedup {speedup}");
        assert!(t256 > t64, "turnover past 64: {t256} vs {t64}");
        assert!(t256 < t64 * 4.0, "decline stays modest: {t256} vs {t64}");
    }

    #[test]
    fn larger_cutoff_costs_more() {
        let mut m = model();
        m.cutoff = 0.2;
        let small = m.strong_step_time(16, 1.0);
        m.cutoff = 0.8;
        let big = m.strong_step_time(16, 1.0);
        assert!(big > 5.0 * small, "{big} vs {small}");
    }

    #[test]
    fn imbalance_slows_the_step() {
        let m = model();
        let balanced = m.strong_step_time(64, 1.0);
        let skewed = m.strong_step_time(64, 2.0);
        assert!(skewed > balanced * 1.3);
    }
}
