//! Criterion microbenchmarks of the neighbor-search backends (the ArborX
//! substitute): grid binning vs k-d tree, on uniform and rollup-like
//! clustered point sets.

use beatnik_spatial::neighbors::{Backend, NeighborList};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn uniform(n: usize) -> Vec<[f64; 3]> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            [
                (t * 0.731).fract() * 6.0 - 3.0,
                (t * 0.317).fract() * 6.0 - 3.0,
                (t * 0.113).fract() - 0.5,
            ]
        })
        .collect()
}

/// Rollup-like set: half the points wound into a tight spiral.
fn clustered(n: usize) -> Vec<[f64; 3]> {
    let mut pts = uniform(n / 2);
    for i in 0..n / 2 {
        let t = i as f64 * 0.02;
        pts.push([t.cos() * t * 0.05, t.sin() * t * 0.05, (i % 7) as f64 * 0.01]);
    }
    pts
}

fn bench_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("neighbor_lists");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    let radius = 0.4;
    for (label, pts) in [("uniform_8k", uniform(8192)), ("clustered_8k", clustered(8192))] {
        for backend in [Backend::Grid, Backend::KdTree] {
            g.bench_with_input(
                BenchmarkId::new(label, format!("{backend:?}")),
                &backend,
                |b, &backend| {
                    b.iter(|| {
                        NeighborList::build(black_box(&pts), black_box(&pts), radius, backend)
                            .total_pairs()
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
