//! # beatnik-dfft — distributed 2D FFT over `beatnik-comm`
//!
//! The paper's low-order Z-Model solver delegates its transforms to the
//! heFFTe GPU FFT library, whose communication behaviour it then studies
//! (Table 1, Figure 9). Rust has no distributed FFT crate, so this crate
//! implements one from scratch: a 2D complex-to-complex transform of a
//! globally `NR × NC` grid block-decomposed over a `Pr × Pc` rank grid.
//!
//! ## The three heFFTe knobs
//!
//! [`FftConfig`] exposes the same three booleans the paper sweeps:
//!
//! * **`all_to_all`** — `true` uses the scheduled pairwise exchange (the
//!   `MPI_Alltoall` built-in); `false` uses the unscheduled direct
//!   point-to-point exchange (a library's custom exchange code).
//! * **`pencils`** — `true` routes data through *pencil* intermediate
//!   layouts: the first and last reshapes stay inside row/column
//!   subcommunicators (many small, local messages) and only the middle
//!   reshape is global; `false` uses *slab* intermediates where all three
//!   reshapes are global all-to-alls.
//! * **`reorder`** — `true` assembles each intermediate into contiguous
//!   transform order directly; `false` keeps received blocks in arrival
//!   layout and pays strided gather/scatter passes around each local FFT
//!   (what heFFTe does when it skips the reorder pass: cheaper packing,
//!   more expensive transforms).
//!
//! All eight configurations produce bit-identical results; they differ in
//! message pattern and local memory traffic, which is the point of the
//! benchmark.
//!
//! ## Structure
//!
//! * [`layout`] — balanced 1D/2D index distributions and rectangle
//!   pack/unpack helpers.
//! * [`redistribute`] — the generic rectangle redistribution engine
//!   (compute intersections analytically, exchange with `alltoallv`).
//! * [`plan`] — [`DistributedFft2d`]: slab and pencil pipelines, forward
//!   and inverse.
//! * [`config`] — [`FftConfig`] and the Table-1 enumeration.

pub mod config;
pub mod layout;
pub mod plan;
pub mod redistribute;

pub use config::FftConfig;
pub use layout::{Dist, Rect};
pub use plan::DistributedFft2d;
