//! Ablation: the Barnes–Hut tree solver's opening-angle tradeoff — the
//! paper's §6 future-work far-field solver, quantified. Real
//! measurement: accuracy vs the exact solver and interactions per target
//! as θ varies, plus the allgather-shaped communication profile.

use beatnik_comm::{OpKind, World};
use beatnik_core::br::{BrPoint, BrSolver, ExactBrSolver, TreeBrSolver};
use beatnik_spatial::BhTree;

fn sheet(n_side: usize) -> Vec<BrPoint> {
    let mut pts = Vec::with_capacity(n_side * n_side);
    for r in 0..n_side {
        for c in 0..n_side {
            let x = -3.0 + 6.0 * (c as f64 + 0.5) / n_side as f64;
            let y = -3.0 + 6.0 * (r as f64 + 0.5) / n_side as f64;
            let z = 0.3 * (x * 1.1).sin() * (y * 0.9).cos();
            pts.push(BrPoint {
                pos: [x, y, z],
                strength: [(y * 0.7).sin() * 1e-3, (x * 0.5).cos() * 1e-3, 0.0],
            });
        }
    }
    pts
}

fn main() {
    let n_side = 48;
    let ranks = 4;
    let thetas = [0.0, 0.2, 0.4, 0.6, 0.8, 1.2];
    let all = sheet(n_side);
    let n = all.len();

    println!("=== Ablation: Barnes-Hut opening angle ({n_side}^2 points, {ranks} ranks) ===\n");
    println!(
        "{:>7} {:>14} {:>16} {:>14}",
        "theta", "rms rel err", "interactions/pt", "vs exact"
    );

    // Interaction counts from a serial tree (identical on every rank).
    let positions: Vec<[f64; 3]> = all.iter().map(|p| p.pos).collect();
    let strengths: Vec<[f64; 3]> = all.iter().map(|p| p.strength).collect();
    let tree = BhTree::build(positions.clone(), strengths);

    for &theta in &thetas {
        let all2 = all.clone();
        let out = World::builder(ranks).run(move |comm| {
            let chunk = n / comm.size();
            let lo = comm.rank() * chunk;
            let mine = &all2[lo..lo + chunk];
            let exact = ExactBrSolver.velocities(&comm, mine, 0.1);
            let got = TreeBrSolver::new(theta).velocities(&comm, mine, 0.1);
            let num: f64 = got
                .iter()
                .zip(&exact)
                .map(|(g, e)| (0..3).map(|k| (g[k] - e[k]).powi(2)).sum::<f64>())
                .sum();
            let den: f64 = exact
                .iter()
                .map(|e| (0..3).map(|k| e[k] * e[k]).sum::<f64>())
                .sum();
            (comm.allreduce_sum(num), comm.allreduce_sum(den))
        });
        let (num, den) = out[0];
        let rms = (num / den.max(1e-300)).sqrt();

        let sampled: usize = positions
            .iter()
            .step_by(64)
            .map(|p| tree.interaction_count(*p, theta))
            .sum();
        let per_pt = sampled as f64 / positions.iter().step_by(64).count() as f64;

        println!(
            "{theta:>7.2} {rms:>14.4e} {per_pt:>16.1} {:>14.4}",
            per_pt / n as f64
        );
    }

    // Communication shape: one allgather per evaluation, nothing else.
    let all3 = all.clone();
    let (_, trace) = World::builder(ranks).run_traced(move |comm| {
        let chunk = n / comm.size();
        let lo = comm.rank() * chunk;
        let _ = TreeBrSolver::new(0.5).velocities(&comm, &all3[lo..lo + chunk], 0.1);
    });
    println!(
        "\ncommunication per evaluation: {} allgather messages, {} bytes \
         (ring gather of the global surface; a distributed LET would cut this)",
        trace.total(OpKind::Allgather).messages,
        trace.total(OpKind::Allgather).bytes
    );
    println!(
        "shape check: interactions/point falls from n={n} (theta=0, exact) toward \
         O(log n) as theta grows, while RMS error rises smoothly."
    );
}
