//! Minimal HTTP/1.1 on `std::net`: enough protocol for a control-plane
//! API (short requests, `Content-Length` bodies, `Connection: close`),
//! with a matching client helper so the loadgen, the benches, and
//! `scripts/verify.sh` need no external tooling.
//!
//! Deliberately out of scope: keep-alive, chunked transfer, TLS,
//! multipart — none of which a job-submission API needs. Requests are
//! size-capped so a misbehaving client cannot balloon server memory.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Largest accepted request body (1 MiB — job specs are tiny).
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Largest accepted request line + headers block.
pub const MAX_HEAD_BYTES: usize = 16 << 10;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Header pairs, keys lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: String,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Protocol-level failure while reading a request; maps to a 400 and a
/// closed connection.
#[derive(Debug)]
pub struct HttpError(pub String);

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "http: {}", self.0)
    }
}

fn err(msg: impl Into<String>) -> HttpError {
    HttpError(msg.into())
}

/// Read one request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut head_bytes = 0usize;

    reader
        .read_line(&mut line)
        .map_err(|e| err(format!("read request line: {e}")))?;
    head_bytes += line.len();
    let line = line.trim_end();
    if line.is_empty() {
        return Err(err("empty request"));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| err("missing method"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| err("missing request target"))?;
    let version = parts.next().ok_or_else(|| err("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(err(format!("unsupported version {version}")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    loop {
        let mut hline = String::new();
        reader
            .read_line(&mut hline)
            .map_err(|e| err(format!("read header: {e}")))?;
        head_bytes += hline.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(err("request head too large"));
        }
        let hline = hline.trim_end();
        if hline.is_empty() {
            break;
        }
        let (k, v) = hline
            .split_once(':')
            .ok_or_else(|| err(format!("malformed header {hline:?}")))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| err(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(err(format!(
            "body of {content_length} bytes exceeds limit {MAX_BODY_BYTES}"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| err(format!("read body: {e}")))?;
    let body = String::from_utf8(body).map_err(|_| err("body is not UTF-8"))?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete response with the given body and content type;
/// always `Connection: close`.
pub fn write_response(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {code} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        status_text(code),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Shorthand for a JSON response.
pub fn write_json(stream: &mut TcpStream, code: u16, body: &str) -> std::io::Result<()> {
    write_response(stream, code, "application/json", body)
}

/// Blocking one-shot client: send `method path` with an optional body
/// and return `(status, body)`. Used by loadgen, bench_serve, and the
/// integration tests — no curl dependency anywhere in the repo.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: beatnik-serve\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let code = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut hline = String::new();
        reader.read_line(&mut hline)?;
        let hline = hline.trim_end();
        if hline.is_empty() {
            break;
        }
        if let Some((k, v)) = hline.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().ok();
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            String::from_utf8_lossy(&buf).into_owned()
        }
        // Connection: close responses without a length: read to EOF.
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok((code, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trip a raw request through a real socket pair and return
    /// what the server side parsed.
    fn parse_via_socket(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            // Hold the socket open until the server finishes reading.
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let out = read_request(&mut stream);
        drop(stream);
        client.join().unwrap();
        out
    }

    #[test]
    fn parses_request_with_body() {
        let req = parse_via_socket(
            b"POST /jobs?debug=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, "{\"a\": 1}\n");
    }

    #[test]
    fn rejects_protocol_garbage() {
        assert!(parse_via_socket(b"\r\n").is_err());
        assert!(parse_via_socket(b"GET /\r\n\r\n").is_err());
        assert!(parse_via_socket(b"GET / SPDY/99\r\n\r\n").is_err());
        assert!(
            parse_via_socket(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err()
        );
        let oversized = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(parse_via_socket(oversized.as_bytes()).is_err());
    }

    #[test]
    fn client_and_server_speak_to_each_other() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.body, "ping");
            write_json(&mut stream, 201, "{\"ok\":true}").unwrap();
        });
        let (code, body) = request(addr, "POST", "/echo", Some("ping")).unwrap();
        assert_eq!(code, 201);
        assert_eq!(body, "{\"ok\":true}");
        server.join().unwrap();
    }
}
