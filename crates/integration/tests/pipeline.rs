//! End-to-end pipeline tests: the four paper benchmark cases run through
//! the rocketrig driver with I/O, deterministically.

use beatnik_comm::World;
use beatnik_io::stats::RunLog;
use beatnik_rocketrig::{run_rig, BenchCase, Deck};

fn quick(case: BenchCase) -> beatnik_rocketrig::RigConfig {
    let mut cfg = case.config(16, 3);
    cfg.params.dt = 1e-3;
    cfg
}

#[test]
fn all_four_paper_benchmark_cases_run() {
    for case in BenchCase::all() {
        let cfg = quick(case);
        let logs = World::builder(4).run(move |comm| run_rig(&comm, &cfg));
        let log = &logs[0];
        assert_eq!(log.steps.len(), 3, "{case:?}");
        let last = log.steps.last().unwrap();
        assert!(last.diagnostics.amplitude.is_finite(), "{case:?} diverged");
        assert_eq!(last.diagnostics.points, 256);
        // All ranks must report identical global logs.
        for other in &logs[1..] {
            assert_eq!(other.steps, log.steps, "{case:?} logs differ across ranks");
        }
    }
}

#[test]
fn reruns_are_bitwise_deterministic() {
    let cfg = quick(BenchCase::LowOrderWeak);
    let cfg2 = cfg.clone();
    let a = World::builder(4).run(move |comm| run_rig(&comm, &cfg))
        .into_iter()
        .next()
        .unwrap();
    let b = World::builder(4).run(move |comm| run_rig(&comm, &cfg2))
        .into_iter()
        .next()
        .unwrap();
    assert_eq!(a.steps, b.steps);
}

#[test]
fn multimode_initial_surface_is_rank_count_invariant() {
    let amp = |ranks: usize| -> f64 {
        let cfg = quick(BenchCase::LowOrderWeak);
        World::builder(ranks).run(move |comm| run_rig(&comm, &cfg))[0]
            .steps
            .last()
            .unwrap()
            .diagnostics
            .amplitude
    };
    let a1 = amp(1);
    let a4 = amp(4);
    assert!((a1 - a4).abs() < 1e-10 * a1, "{a1} vs {a4}");
}

#[test]
fn run_log_json_roundtrips_through_disk() {
    let mut cfg = quick(BenchCase::CutoffStrong);
    cfg.record_ownership = true;
    cfg.ownership_ranks = Some(64);
    let log = World::builder(2).run(move |comm| run_rig(&comm, &cfg))
        .into_iter()
        .next()
        .unwrap();
    let dir = std::env::temp_dir().join("beatnik_pipeline_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.json");
    log.write_json(&path).unwrap();
    let back = RunLog::read_json(&path).unwrap();
    assert_eq!(back, log);
    assert_eq!(back.steps[0].ownership.as_ref().unwrap().len(), 64);
}

#[test]
fn vtk_and_csv_dumps_from_one_run() {
    let dir = std::env::temp_dir().join("beatnik_pipeline_io");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let dir2 = dir.clone();
    World::builder(4).run(move |comm| {
        let cfg = quick(BenchCase::LowOrderWeak);
        let mesh = cfg.build_mesh(&comm);
        let bc = cfg.boundary_condition();
        let mut solver = beatnik_core::Solver::new(mesh, bc, cfg.solver_config());
        solver.step();
        beatnik_io::vtk::write_vtk(solver.problem(), dir2.join("s.vtk")).unwrap();
        beatnik_io::csv::write_csv(solver.problem(), dir2.join("s.csv")).unwrap();
    });
    let vtk = std::fs::read_to_string(dir.join("s.vtk")).unwrap();
    assert!(vtk.contains("STRUCTURED_GRID"));
    let csv = std::fs::read_to_string(dir.join("s.csv")).unwrap();
    assert_eq!(csv.lines().count(), 257); // header + 16x16 points
}

#[test]
fn deck_metadata_is_consistent() {
    assert!(Deck::MultiModePeriodic.periodic());
    assert!(!Deck::SingleModeOpen.periodic());
    // CLI parses a full paper-case invocation.
    let args: Vec<String> = [
        "--deck",
        "singlemode",
        "--order",
        "high",
        "--solver",
        "cutoff",
        "--cutoff",
        "0.5",
        "--n",
        "32",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let opts = beatnik_rocketrig::parse_args(&args).unwrap();
    assert_eq!(opts.config.deck, Deck::SingleModeOpen);
    assert_eq!(opts.config.params.cutoff, 0.5);
}

#[test]
fn checkpoint_restart_is_bitwise_identical() {
    // 6 straight steps == 3 steps + checkpoint + restore + 3 steps.
    let dir = std::env::temp_dir().join("beatnik_ckpt_pipeline");
    std::fs::create_dir_all(&dir).unwrap();
    let ck_path = dir.join("mid.json");

    let build = |comm: &beatnik_comm::Communicator| {
        let cfg = quick(BenchCase::LowOrderWeak);
        let mesh = cfg.build_mesh(comm);
        let bc = cfg.boundary_condition();
        beatnik_core::Solver::new(mesh, bc, cfg.solver_config())
    };

    // Reference: 6 steps straight through.
    let reference = World::builder(4).run(|comm| {
        let mut s = build(&comm);
        for _ in 0..6 {
            s.step();
        }
        s.problem().owned_positions()
    });

    // Run 3, checkpoint, new world restores and runs 3 more.
    let p2 = ck_path.clone();
    World::builder(4).run(move |comm| {
        let mut s = build(&comm);
        for _ in 0..3 {
            s.step();
        }
        beatnik_io::checkpoint::save(s.problem(), s.step_count(), s.time(), &p2).unwrap();
        comm.barrier();
    });
    let p3 = ck_path.clone();
    let restarted = World::builder(4).run(move |comm| {
        let mut s = build(&comm);
        let (step, time) = beatnik_io::checkpoint::load(s.problem_mut(), &p3).unwrap();
        s.restore_clock(step, time);
        assert_eq!(s.step_count(), 3);
        for _ in 0..3 {
            s.step();
        }
        s.problem().owned_positions()
    });

    for (rank, (a, b)) in reference.iter().zip(&restarted).enumerate() {
        assert_eq!(a, b, "rank {rank} state diverged after restart");
    }
}

#[test]
fn rank_failure_mid_run_aborts_the_world() {
    // Failure injection: one rank dies inside the timestep loop; the
    // world must abort with the root-cause panic rather than hang.
    let result = std::panic::catch_unwind(|| {
        World::builder(4).run(|comm| {
            let cfg = quick(BenchCase::LowOrderWeak);
            let mesh = cfg.build_mesh(&comm);
            let bc = cfg.boundary_condition();
            let mut s = beatnik_core::Solver::new(mesh, bc, cfg.solver_config());
            s.step();
            if comm.rank() == 2 {
                panic!("injected failure on rank 2");
            }
            s.step();
        })
    });
    let err = result.unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| err.downcast_ref::<&str>().copied())
        .unwrap_or("");
    assert!(
        msg.contains("injected failure"),
        "expected root-cause panic, got: {msg}"
    );
}
