//! Prefix-scan and reduce-scatter collectives.
//!
//! `scan` (inclusive prefix reduction) underlies distributed enumeration
//! — e.g. assigning globally contiguous particle ids after remeshing —
//! and `reduce_scatter` is the building block production MPIs use inside
//! large-message allreduce. Both use the standard algorithms: inclusive
//! scan by recursive doubling (⌈log₂P⌉ rounds), reduce-scatter by
//! pairwise exchange with block accumulation.
//!
//! Rounds forward borrowed slices ([`Communicator::coll_send_slice`])
//! rather than cloning a fresh `Vec` per round, so the per-round cost is
//! one pooled-envelope copy (or a single owned copy on the rendezvous
//! path), not an allocation.

use crate::communicator::Communicator;
use crate::error::CommError;
use crate::message::CommData;
use crate::reduce_op::ReduceOp;
use crate::trace::OpKind;
use beatnik_telemetry::CommOp;

/// Inclusive prefix reduction: rank `r` returns `v₀ ⊕ v₁ ⊕ … ⊕ v_r`.
pub fn scan<T: CommData + Copy, O: ReduceOp<T>>(
    comm: &Communicator,
    value: T,
    op: &O,
) -> Result<T, CommError> {
    comm.coll_begin(OpKind::Scan);
    let mut span = comm.telemetry().op(CommOp::Scan);
    span.bytes(std::mem::size_of::<T>() as u64);
    comm.check_group_alive()?;
    let p = comm.size();
    let r = comm.rank();
    let mut acc = value;
    let mut dist = 1usize;
    let mut round = 0u64;
    const TAG: u64 = 0x5343_414e; // "SCAN"
    while dist < p {
        // Send the running prefix up; receive from below and fold in.
        if r + dist < p {
            comm.coll_send_slice(r + dist, TAG + round, std::slice::from_ref(&acc), OpKind::Scan);
        }
        if r >= dist {
            let low: Vec<T> = comm.try_coll_recv(r - dist, TAG + round, "scan")?;
            acc = op.combine(&low[0], &acc);
        }
        dist *= 2;
        round += 1;
    }
    Ok(acc)
}

/// Exclusive prefix reduction: rank 0 returns `None`; rank `r > 0`
/// returns `v₀ ⊕ … ⊕ v_{r−1}`.
pub fn exscan<T: CommData + Copy, O: ReduceOp<T>>(
    comm: &Communicator,
    value: T,
    op: &O,
) -> Result<Option<T>, CommError> {
    // Inclusive scan of the *previous* rank's value: shift by one via a
    // ring send, then scan. Simpler: run inclusive scan, then shift the
    // results right by one rank.
    let mut span = comm.telemetry().op(CommOp::Exscan);
    span.bytes(std::mem::size_of::<T>() as u64);
    let inclusive = scan(comm, value, op)?;
    let p = comm.size();
    let r = comm.rank();
    const TAG: u64 = 0x4558_5343; // "EXSC"
    if r + 1 < p {
        comm.coll_send_slice(r + 1, TAG, std::slice::from_ref(&inclusive), OpKind::Scan);
    }
    if r > 0 {
        let v: Vec<T> = comm.try_coll_recv(r - 1, TAG, "exscan")?;
        Ok(Some(v.into_iter().next().unwrap()))
    } else {
        Ok(None)
    }
}

/// Reduce-scatter: element-wise reduce `contributions` (one equal-length
/// block per destination rank from every rank), returning this rank's
/// reduced block.
pub fn reduce_scatter<T: CommData + Copy, O: ReduceOp<T>>(
    comm: &Communicator,
    contributions: Vec<Vec<T>>,
    op: &O,
) -> Result<Vec<T>, CommError> {
    comm.coll_begin(OpKind::Reduce);
    let mut span = comm.telemetry().op(CommOp::ReduceScatter);
    comm.check_group_alive()?;
    let p = comm.size();
    let r = comm.rank();
    assert_eq!(
        contributions.len(),
        p,
        "reduce_scatter: need one block per rank"
    );
    span.bytes(
        contributions
            .iter()
            .map(|b| std::mem::size_of_val(b.as_slice()) as u64)
            .sum(),
    );
    // Pairwise-exchange with block accumulation (any P): in step s, send
    // the block destined for rank (r+s) and fold the received block for
    // our own slot.
    const TAG: u64 = 0x5253_4354; // "RSCT"
    let mut mine = contributions[r].clone();
    for s in 1..p {
        let dst = (r + s) % p;
        let src = (r + p - s) % p;
        comm.coll_send_slice(dst, TAG + s as u64, &contributions[dst], OpKind::Reduce);
        let theirs: Vec<T> = comm.try_coll_recv(src, TAG + s as u64, "reduce_scatter")?;
        assert_eq!(theirs.len(), mine.len(), "reduce_scatter: ragged blocks");
        for (a, b) in mine.iter_mut().zip(theirs.iter()) {
            *a = op.combine(a, b);
        }
    }
    Ok(mine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce_op::{MaxOp, SumOp};
    use crate::world::World;

    #[test]
    fn inclusive_scan_all_sizes() {
        for p in [1usize, 2, 3, 5, 8] {
            let out = World::builder(p).run(|comm| scan(&comm, comm.rank() as u64 + 1, &SumOp).unwrap());
            for (r, v) in out.into_iter().enumerate() {
                let expect: u64 = (1..=r as u64 + 1).sum();
                assert_eq!(v, expect, "p={p} r={r}");
            }
        }
    }

    #[test]
    fn exclusive_scan_offsets() {
        // The canonical use: globally contiguous offsets from local counts.
        let out = World::builder(4).run(|comm| {
            let local_count = (comm.rank() + 1) * 10; // 10, 20, 30, 40
            exscan(&comm, local_count as u64, &SumOp).unwrap().unwrap_or(0)
        });
        assert_eq!(out, vec![0, 10, 30, 60]);
    }

    #[test]
    fn scan_with_max() {
        let out = World::builder(5).run(|comm| {
            let v = [3i64, 1, 4, 1, 5][comm.rank()];
            scan(&comm, v, &MaxOp).unwrap()
        });
        assert_eq!(out, vec![3, 3, 4, 4, 5]);
    }

    #[test]
    fn scan_traffic_is_attributed_to_scan_not_reduce() {
        let (_, trace) = World::builder(4).run_traced(|comm| {
            let _ = scan(&comm, comm.rank() as u64, &SumOp);
        });
        // Recursive doubling on 4 ranks: rank 0 sends in rounds dist=1,2
        // (to ranks 1 and 2), receives nothing. Nothing may leak into the
        // Reduce bucket.
        let s0 = trace.rank(0).get(OpKind::Scan);
        assert_eq!(s0.calls, 1);
        assert_eq!(s0.messages, 2);
        assert_eq!(s0.bytes, 2 * 8);
        for r in 0..4 {
            let red = trace.rank(r).get(OpKind::Reduce);
            assert_eq!(red.messages, 0, "rank {r} scan traffic leaked into Reduce");
            assert_eq!(red.calls, 0, "rank {r} scan call leaked into Reduce");
        }
    }

    #[test]
    fn reduce_scatter_sums_blocks() {
        for p in [1usize, 2, 3, 4] {
            let out = World::builder(p).run(move |comm| {
                // Rank r contributes block[d] = [r + d*100; 3].
                let blocks: Vec<Vec<u64>> = (0..p)
                    .map(|d| vec![(comm.rank() + d * 100) as u64; 3])
                    .collect();
                reduce_scatter(&comm, blocks, &SumOp).unwrap()
            });
            let rank_sum: u64 = (0..p as u64).sum();
            for (d, block) in out.into_iter().enumerate() {
                assert_eq!(block, vec![rank_sum + (d * 100 * p) as u64; 3], "p={p}");
            }
        }
    }

    #[test]
    fn reduce_scatter_matches_allreduce_slice() {
        let p = 4;
        let out = World::builder(p).run(move |comm| {
            let full: Vec<f64> = (0..p * 2).map(|i| (i * (comm.rank() + 1)) as f64).collect();
            let blocks: Vec<Vec<f64>> = full.chunks(2).map(|c| c.to_vec()).collect();
            let scattered = reduce_scatter(&comm, blocks, &SumOp).unwrap();
            let all = comm.allreduce_vec(full, &SumOp);
            (scattered, all)
        });
        for (r, (scattered, all)) in out.into_iter().enumerate() {
            assert_eq!(scattered, all[r * 2..r * 2 + 2].to_vec());
        }
    }
}
