//! Quickstart: the smallest complete Beatnik-RS simulation.
//!
//! Launches 4 thread-ranks, builds a periodic single-mode Rayleigh–Taylor
//! problem on a 32×32 interface mesh, solves it with the low-order
//! (FFT-based) Z-Model, and prints the growing interface amplitude
//! against the linear-theory prediction σ = √(A·g·k).
//!
//! Run with: `cargo run --release --example quickstart`

use beatnik_comm::World;
use beatnik_core::solver::BrChoice;
use beatnik_core::{Diagnostics, InitialCondition, Order, Params, Solver, SolverConfig};
use beatnik_dfft::FftConfig;
use beatnik_mesh::{BoundaryCondition, SurfaceMesh};
use std::f64::consts::PI;

fn main() {
    let ranks = 4;
    let n = 32;
    let steps = 100;

    let params = Params {
        atwood: 0.5,
        gravity: 2.0,
        mu: 0.0, // no artificial viscosity needed at this tiny amplitude
        dt: 5e-3,
        ..Params::default()
    };

    println!("Beatnik-RS quickstart: {n}x{n} interface, {ranks} ranks, low-order solver");

    let amplitudes = World::builder(ranks).run(|comm| {
        // A [0, 2pi)^2 periodic reference domain.
        let l = 2.0 * PI;
        let mesh = SurfaceMesh::new(&comm, [n, n], [true, true], 2, [0.0, 0.0], [l, l]);
        let bc = BoundaryCondition::Periodic { periods: [l, l] };
        let cfg = SolverConfig {
            order: Order::Low,
            br: BrChoice::None,
            params,
            fft: FftConfig::default(),
            ic: InitialCondition::SingleMode {
                amplitude: 1e-4,
                modes: [1.0, 1.0],
            },
        };
        let mut solver = Solver::new(mesh, bc, cfg);

        let mut series = Vec::new();
        solver.run(steps, |step, pm| {
            if step % 10 == 0 {
                let d = Diagnostics::compute(pm);
                series.push((step, step as f64 * params.dt, d.amplitude));
            }
        });
        series
    });

    // Every rank computed the same global diagnostics; report rank 0's.
    let series = &amplitudes[0];
    let a0 = 1e-4;
    // k = sqrt(kx^2 + ky^2) = sqrt(2) for the (1,1) mode on a 2pi domain.
    let sigma = (params.atwood * params.gravity * (2.0f64).sqrt()).sqrt();
    println!("linear theory: sigma = sqrt(A*g*|k|) = {sigma:.4} for the (1,1) mode\n");
    println!(
        "{:>6} {:>10} {:>14} {:>14}",
        "step", "time", "amplitude", "theory"
    );
    for &(step, t, amp) in series {
        // Linearized solution from rest: a(t) = a0*cosh(sigma*t).
        let theory = a0 * (sigma * t).cosh();
        println!("{step:>6} {t:>10.4} {amp:>14.6e} {theory:>14.6e}");
    }
    let (_, t_end, amp_end) = *series.last().unwrap();
    let theory_end = a0 * (sigma * t_end).cosh();
    println!(
        "\nfinal measured/theory ratio: {:.3} (1.0 = perfect linear growth)",
        amp_end / theory_end
    );
}
