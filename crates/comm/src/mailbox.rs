//! Per-rank mailboxes with MPI-style `(source, tag)` matching.
//!
//! Each `(communicator, rank)` pair owns one mailbox. Senders push
//! envelopes (never blocking — sends are buffered, as with small/eager MPI
//! messages); receivers block on a condition variable until an envelope
//! matching their `(src, tag)` selector arrives. Matching scans in arrival
//! order, which preserves MPI's non-overtaking guarantee for messages from
//! the same sender with the same tag.

use crate::error::CommError;
use crate::message::Envelope;
use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// A blocking, matching message queue for one rank of one communicator.
#[derive(Default)]
pub struct Mailbox {
    queue: Mutex<Vec<Envelope>>,
    cond: Condvar,
}

impl Mailbox {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposit an envelope and wake any waiting receiver.
    pub fn push(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.push(env);
        // Receivers with non-matching selectors re-check and sleep again, so
        // notify_all is required for correctness when multiple receives with
        // different selectors could be outstanding.
        self.cond.notify_all();
    }

    /// Block until an envelope matching `(src, tag)` is available and
    /// remove it. `usize::MAX`/`u64::MAX` are wildcards.
    pub fn recv_matching(&self, src: usize, tag: u64) -> Envelope {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| e.matches(src, tag)) {
                return q.remove(pos);
            }
            self.cond.wait(&mut q);
        }
    }

    /// Like [`Mailbox::recv_matching`] but gives up after `timeout`.
    ///
    /// Used by tests to convert deadlocks into failures instead of hangs.
    pub fn recv_matching_timeout(
        &self,
        rank: usize,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Envelope, CommError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q.iter().position(|e| e.matches(src, tag)) {
                return Ok(q.remove(pos));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout { rank, src, tag });
            }
            if self.cond.wait_until(&mut q, deadline).timed_out() {
                // Re-check once after timing out; a message may have raced in.
                if let Some(pos) = q.iter().position(|e| e.matches(src, tag)) {
                    return Ok(q.remove(pos));
                }
                return Err(CommError::Timeout { rank, src, tag });
            }
        }
    }

    /// Non-blocking probe: does any queued envelope match `(src, tag)`?
    pub fn probe(&self, src: usize, tag: u64) -> bool {
        self.queue.lock().iter().any(|e| e.matches(src, tag))
    }

    /// Number of queued envelopes (any selector).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the mailbox has no pending envelopes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Envelope;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn push_then_recv_same_thread() {
        let mb = Mailbox::new();
        mb.push(Envelope::new(0, 1, vec![42i32]));
        let env = mb.recv_matching(0, 1);
        assert_eq!(env.into_data::<i32>(), vec![42]);
    }

    #[test]
    fn matching_skips_non_matching_messages() {
        let mb = Mailbox::new();
        mb.push(Envelope::new(0, 1, vec![1i32]));
        mb.push(Envelope::new(0, 2, vec![2i32]));
        let env = mb.recv_matching(0, 2);
        assert_eq!(env.into_data::<i32>(), vec![2]);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn non_overtaking_order_for_same_selector() {
        let mb = Mailbox::new();
        mb.push(Envelope::new(3, 9, vec![1u8]));
        mb.push(Envelope::new(3, 9, vec![2u8]));
        assert_eq!(mb.recv_matching(3, 9).into_data::<u8>(), vec![1]);
        assert_eq!(mb.recv_matching(3, 9).into_data::<u8>(), vec![2]);
    }

    #[test]
    fn blocking_recv_wakes_on_cross_thread_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || mb2.recv_matching(5, 5).into_data::<u64>());
        std::thread::sleep(Duration::from_millis(20));
        mb.push(Envelope::new(5, 5, vec![99u64]));
        assert_eq!(handle.join().unwrap(), vec![99]);
    }

    #[test]
    fn timeout_fires_when_nothing_arrives() {
        let mb = Mailbox::new();
        let err = mb
            .recv_matching_timeout(7, 0, 0, Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(
            err,
            CommError::Timeout {
                rank: 7,
                src: 0,
                tag: 0
            }
        );
    }

    #[test]
    fn probe_reports_matches_without_consuming() {
        let mb = Mailbox::new();
        assert!(!mb.probe(usize::MAX, u64::MAX));
        mb.push(Envelope::new(1, 4, vec![0f32]));
        assert!(mb.probe(1, 4));
        assert!(mb.probe(usize::MAX, u64::MAX));
        assert!(!mb.probe(2, 4));
        assert_eq!(mb.len(), 1);
    }
}
