//! # beatnik-serve — a multi-tenant simulation service
//!
//! Turns the Beatnik-RS stack from a one-shot CLI into a long-running
//! server: tenants submit simulation jobs (problem size, solver order,
//! transport backend, fault plan, checkpoint cadence, priority,
//! deadline) over a hand-rolled HTTP/1.1 API, and a scheduler
//! gang-schedules each job's ranks onto one shared [`RankPool`].
//!
//! The moving parts, bottom-up:
//!
//! * [`job`] — the [`job::JobSpec`] wire format, admission validation,
//!   and the [`job::JobRecord`] state machine
//!   (queued → running → {completed, failed, canceled}, with a
//!   preempted ↔ running loop in the middle).
//! * [`scheduler`] — admission control (reject invalid, 429 when
//!   saturated), priority + deadline ordering, **elastic gang
//!   dispatch** (a job can start or resume with fewer ranks than it
//!   asked for, down to its `min_ranks`), and **preemption**: when a
//!   high-priority job cannot be seated, lower-priority victims are
//!   flagged, checkpoint themselves at a step boundary using the PR 4
//!   checkpoint/restart machinery, and requeue; a reservation keeps
//!   backfill from stealing the freed slots.
//! * [`http`] — request/response parsing over `std::net` plus a
//!   one-shot client used by loadgen, the benches, and `verify.sh`
//!   (no curl anywhere).
//! * [`server`] — the accept loop and routes (`/jobs`, `/jobs/{id}`,
//!   `/metrics`, `/healthz`).
//! * [`metrics`] — service-level counters/gauges/histograms published
//!   through the shared `beatnik-telemetry` registry, so `GET /metrics`
//!   is the same OpenMetrics exposition the rest of the workspace uses.
//!
//! The physics itself stays out of this crate: execution is abstracted
//! behind [`scheduler::JobRunner`], implemented by
//! `beatnik-rocketrig`'s serve driver. That keeps the dependency
//! arrow pointing `rocketrig → serve`, not the reverse.
//!
//! [`RankPool`]: beatnik_comm::RankPool

pub mod http;
pub mod job;
pub mod metrics;
pub mod scheduler;
pub mod server;

pub use job::{JobLimits, JobRecord, JobResult, JobSpec, JobState, MAX_PRIORITY};
pub use metrics::ServeMetrics;
pub use scheduler::{
    CancelOutcome, JobContext, JobOutcome, JobRunner, Scheduler, SchedulerConfig, SubmitError,
};
pub use server::{serve, ServerHandle, METRICS_CONTENT_TYPE};
