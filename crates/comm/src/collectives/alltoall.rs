//! All-to-all exchanges — the communication pattern at the heart of the
//! paper's low-order (FFT) benchmark.
//!
//! Two algorithms are provided because the heFFTe evaluation in the paper
//! (Section 5.5, Figure 9) is precisely about the difference between
//! MPI's built-in `MPI_Alltoall` and a library's custom point-to-point
//! exchange:
//!
//! * [`AllToAllAlgo::Pairwise`] — the scheduled pairwise exchange used by
//!   `MPI_Alltoall` for large messages: P−1 steps, in step `s` rank `r`
//!   sends to `(r+s) mod P` and receives from `(r−s) mod P`, so each
//!   network link carries one message at a time.
//! * [`AllToAllAlgo::Direct`] — post-everything-then-receive, the strategy
//!   custom exchange code (like heFFTe's `AllToAll=False` path) typically
//!   uses; fewer synchronization constraints, but all P−1 messages
//!   contend simultaneously.
//!
//! Both produce identical results; they differ (on a real network) in
//! congestion behaviour, which `beatnik-model` models for the figures.

use crate::communicator::Communicator;
use crate::message::CommData;
use crate::trace::OpKind;
use beatnik_telemetry::CommOp;

/// Algorithm selector for [`alltoall`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllToAllAlgo {
    /// Scheduled pairwise exchange (MPI_Alltoall-style).
    #[default]
    Pairwise,
    /// Post all sends, then receive (custom p2p exchange style).
    Direct,
}

/// Regular all-to-all: `blocks[d]` goes to rank `d`; returns blocks
/// indexed by source rank. All ranks must pass exactly `size()` blocks.
pub fn alltoall<T: CommData + Clone>(
    comm: &Communicator,
    blocks: Vec<Vec<T>>,
    algo: AllToAllAlgo,
) -> Vec<Vec<T>> {
    comm.coll_begin(OpKind::Alltoall);
    let mut span = comm.telemetry().op(CommOp::Alltoall);
    span.bytes(block_bytes(&blocks));
    exchange(comm, blocks, algo, OpKind::Alltoall)
}

/// Irregular all-to-all: per-destination block lengths may differ and may
/// be zero. Zero-length blocks are still exchanged (as zero-byte
/// messages), keeping the message-matching schedule deterministic.
pub fn alltoallv<T: CommData + Clone>(comm: &Communicator, blocks: Vec<Vec<T>>) -> Vec<Vec<T>> {
    alltoallv_with(comm, blocks, AllToAllAlgo::Pairwise)
}

/// [`alltoallv`] with an explicit algorithm choice.
pub fn alltoallv_with<T: CommData + Clone>(
    comm: &Communicator,
    blocks: Vec<Vec<T>>,
    algo: AllToAllAlgo,
) -> Vec<Vec<T>> {
    comm.coll_begin(OpKind::Alltoallv);
    let mut span = comm.telemetry().op(CommOp::Alltoallv);
    span.bytes(block_bytes(&blocks));
    exchange(comm, blocks, algo, OpKind::Alltoallv)
}

/// Total payload bytes this rank contributes to an exchange.
fn block_bytes<T>(blocks: &[Vec<T>]) -> u64 {
    blocks
        .iter()
        .map(|b| std::mem::size_of_val(b.as_slice()) as u64)
        .sum()
}

fn exchange<T: CommData + Clone>(
    comm: &Communicator,
    mut blocks: Vec<Vec<T>>,
    algo: AllToAllAlgo,
    kind: OpKind,
) -> Vec<Vec<T>> {
    let p = comm.size();
    let r = comm.rank();
    assert_eq!(blocks.len(), p, "alltoall: need exactly one block per rank");
    let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    out[r] = std::mem::take(&mut blocks[r]);
    match algo {
        AllToAllAlgo::Pairwise => {
            for s in 1..p {
                let dst = (r + s) % p;
                let src = (r + p - s) % p;
                let block = std::mem::take(&mut blocks[dst]);
                comm.coll_send(dst, s as u64, block, kind);
                out[src] = comm.coll_recv::<T>(src, s as u64);
            }
        }
        AllToAllAlgo::Direct => {
            // Post every send up front (buffered), then drain receives.
            // Tag by *step distance* so the matching schedule is identical
            // to Pairwise and repeated alltoalls cannot cross-match.
            for s in 1..p {
                let dst = (r + s) % p;
                let block = std::mem::take(&mut blocks[dst]);
                comm.coll_send(dst, s as u64, block, kind);
            }
            for s in 1..p {
                let src = (r + p - s) % p;
                out[src] = comm.coll_recv::<T>(src, s as u64);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::AllToAllAlgo;
    use crate::trace::OpKind;
    use crate::world::World;

    /// Every rank sends `[r, d]` to rank `d`; verify receipt from all.
    fn roundtrip(p: usize, algo: AllToAllAlgo) {
        let out = World::run(p, move |c| {
            let send: Vec<u64> = (0..p)
                .flat_map(|d| [c.rank() as u64, d as u64])
                .collect();
            c.alltoall_with(&send, algo)
        });
        for (r, flat) in out.into_iter().enumerate() {
            for (src, block) in flat.chunks(2).enumerate() {
                assert_eq!(block, [src as u64, r as u64], "p={p} algo={algo:?}");
            }
        }
    }

    #[test]
    fn pairwise_all_sizes() {
        for p in [1, 2, 3, 4, 5, 8] {
            roundtrip(p, AllToAllAlgo::Pairwise);
        }
    }

    #[test]
    fn direct_all_sizes() {
        for p in [1, 2, 3, 4, 5, 8] {
            roundtrip(p, AllToAllAlgo::Direct);
        }
    }

    #[test]
    fn alltoallv_with_empty_and_ragged_blocks() {
        let out = World::run(4, |c| {
            // Rank r sends r+1 copies of its rank to each destination of
            // higher rank, nothing to lower ranks.
            let counts: Vec<usize> = (0..4)
                .map(|d| if d > c.rank() { c.rank() + 1 } else { 0 })
                .collect();
            let send = vec![c.rank() as u32; counts.iter().sum()];
            c.alltoallv(&send, &counts)
        });
        for (r, (flat, rcounts)) in out.into_iter().enumerate() {
            let mut rest = flat.as_slice();
            for (src, &n) in rcounts.iter().enumerate() {
                let (block, tail) = rest.split_at(n);
                rest = tail;
                if src < r {
                    assert_eq!(block, vec![src as u32; src + 1]);
                } else {
                    assert!(block.is_empty());
                }
            }
        }
    }

    #[test]
    fn alltoall_message_counts() {
        let (_, trace) = World::run_traced(4, |c| {
            let _ = c.alltoall(&[0f64; 40]); // 10 elements per destination
        });
        for r in 0..4 {
            let s = trace.rank(r).get(OpKind::Alltoall);
            assert_eq!(s.calls, 1);
            assert_eq!(s.messages, 3);
            assert_eq!(s.bytes, 3 * 80);
        }
    }

    #[test]
    fn repeated_alltoalls_do_not_cross_match() {
        World::run(3, |c| {
            for i in 0..10u64 {
                let send: Vec<u64> = (0..3).map(|d| i * 100 + d).collect();
                let got = c.alltoall(&send);
                assert_eq!(got, vec![i * 100 + c.rank() as u64; 3], "iter {i}");
            }
        });
    }

    #[test]
    fn direct_and_pairwise_agree() {
        for p in [2usize, 5, 6] {
            let a = World::run(p, move |c| {
                let send: Vec<i32> = (0..p).map(|d| (c.rank() * p + d) as i32).collect();
                c.alltoall_with(&send, AllToAllAlgo::Pairwise)
            });
            let b = World::run(p, move |c| {
                let send: Vec<i32> = (0..p).map(|d| (c.rank() * p + d) as i32).collect();
                c.alltoall_with(&send, AllToAllAlgo::Direct)
            });
            assert_eq!(a, b);
        }
    }
}
