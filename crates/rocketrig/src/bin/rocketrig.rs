//! The rocket-rig driver binary: Beatnik-RS's equivalent of the paper's
//! ~700-line driver program. Launches `--ranks` thread-ranks, runs the
//! configured deck, prints per-step diagnostics, and optionally writes
//! VTK dumps and a JSON run log.

use beatnik_comm::World;
use beatnik_rocketrig::{parse_args, run_rig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.contains("USAGE") { 0 } else { 2 });
        }
    };

    let cfg = opts.config.clone();
    println!(
        "rocketrig: {:?}, {} order, {}x{} mesh, {} steps, {} ranks, {}",
        cfg.deck, cfg.order, cfg.mesh_n, cfg.mesh_n, cfg.steps, opts.ranks, cfg.fft
    );

    let start = std::time::Instant::now();
    let cfg2 = cfg.clone();
    let (logs, trace, timeline) = if opts.profiling() {
        let (logs, trace, timeline) =
            World::run_profiled(opts.ranks, move |comm| run_rig(&comm, &cfg2));
        (logs, trace, Some(timeline))
    } else {
        let (logs, trace) = World::run_traced(opts.ranks, move |comm| run_rig(&comm, &cfg2));
        (logs, trace, None)
    };
    let elapsed = start.elapsed();
    let log = logs.into_iter().next().expect("no rank output");

    for rec in &log.steps {
        println!(
            "step {:5}  t={:.5}  amplitude={:.6e}  z=[{:+.4e}, {:+.4e}]  enstrophy={:.4e}",
            rec.step,
            rec.time,
            rec.diagnostics.amplitude,
            rec.diagnostics.z_min,
            rec.diagnostics.z_max,
            rec.diagnostics.enstrophy
        );
        if let Some(own) = &rec.ownership {
            let max = own.iter().cloned().fold(0.0f64, f64::max);
            println!(
                "            ownership: max {:.3}% of points on one rank ({} ranks)",
                max * 100.0,
                own.len()
            );
        }
    }

    println!(
        "\ncommunication summary (all ranks, eager limit {} B):\n{}",
        beatnik_comm::eager_limit_from_env(),
        trace.summary()
    );
    if opts.print_matrix {
        println!("{}", trace.matrix_text());
    }
    println!("wall time: {:.3} s", elapsed.as_secs_f64());

    if let Some(timeline) = &timeline {
        if opts.profile_summary {
            println!("\ntelemetry summary:\n{}", timeline.summary());
        }
        if let Some(path) = &opts.profile_path {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            beatnik_io::write_chrome_trace(timeline, path).expect("failed to write trace");
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("profile");
            let phases = path.with_file_name(format!("{stem}-phases.csv"));
            let skew = path.with_file_name(format!("{stem}-skew.csv"));
            beatnik_io::write_phase_csv(timeline, &phases).expect("failed to write phase CSV");
            beatnik_io::write_skew_csv(timeline, &skew).expect("failed to write skew CSV");
            println!(
                "profile written to {} (open in chrome://tracing or Perfetto); \
                 tables: {}, {}",
                path.display(),
                phases.display(),
                skew.display()
            );
        }
    }

    if let Some(path) = opts.log_path {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        log.write_json(&path).expect("failed to write run log");
        println!("run log written to {}", path.display());
    }
}
