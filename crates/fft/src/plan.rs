//! Planned 1D FFTs.
//!
//! [`Fft::new`] builds a reusable plan: for power-of-two sizes an
//! iterative radix-2 Cooley–Tukey transform with a precomputed
//! bit-reversal permutation and a **stage-contiguous** twiddle table;
//! for all other sizes Bluestein's chirp-z algorithm (see
//! [`crate::bluestein`]), which itself reuses a radix-2 plan of the
//! padded size.
//!
//! The butterfly stages execute through the lane-parallel kernels in
//! `crate::kernel` (AVX/SSE2 on x86_64, with a scalar path that every
//! SIMD kernel matches bit-for-bit). [`Fft::forward_scalar`] /
//! [`Fft::inverse_scalar`] force the scalar kernels, as the reference
//! for equivalence tests and speedup benchmarks.
//!
//! Stage-contiguous twiddles: stage `s` (butterfly half-width
//! `h = 2^s`) reads its `h` twiddles `e^{-2πik/2h}` from the flat table
//! at `[h-1, 2h-1)` — unit-stride loads in the hot loop, where the old
//! single-table layout strided by `n/width` and defeated vector loads.
//! Total table size is `n - 1` instead of `n/2`, a negligible cost.

use crate::bluestein::Bluestein;
use crate::complex::Complex;
use crate::kernel;

/// A reusable plan for forward/inverse transforms of one length.
pub struct Fft {
    n: usize,
    kind: Kind,
}

enum Kind {
    /// Degenerate lengths 0 and 1 (transform is the identity).
    Identity,
    Radix2(Radix2),
    Bluestein(Box<Bluestein>),
}

impl Fft {
    /// Plan a transform of length `n` (any `n`, including 0 and 1).
    pub fn new(n: usize) -> Self {
        let kind = if n <= 1 {
            Kind::Identity
        } else if n.is_power_of_two() {
            Kind::Radix2(Radix2::new(n))
        } else {
            Kind::Bluestein(Box::new(Bluestein::new(n)))
        };
        Fft { n, kind }
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the planned length is zero.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward transform (negative exponent, unnormalized).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "fft: buffer length mismatch");
        match &self.kind {
            Kind::Identity => {}
            Kind::Radix2(r) => r.transform(data, Direction::Forward),
            Kind::Bluestein(b) => b.forward(data),
        }
    }

    /// In-place inverse transform (positive exponent, scaled by `1/n`).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "fft: buffer length mismatch");
        match &self.kind {
            Kind::Identity => {}
            Kind::Radix2(r) => {
                r.transform(data, Direction::Inverse);
                let s = 1.0 / self.n as f64;
                for v in data.iter_mut() {
                    *v = v.scale(s);
                }
            }
            Kind::Bluestein(b) => b.inverse(data),
        }
    }

    /// In-place inverse without the `1/n` normalization (used by
    /// distributed transforms that normalize once at the end).
    pub fn inverse_unnormalized(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "fft: buffer length mismatch");
        match &self.kind {
            Kind::Identity => {}
            Kind::Radix2(r) => r.transform(data, Direction::Inverse),
            Kind::Bluestein(b) => {
                b.inverse(data);
                let s = self.n as f64;
                for v in data.iter_mut() {
                    *v = v.scale(s);
                }
            }
        }
    }

    /// [`Fft::forward`] through the lane-serial reference kernels.
    ///
    /// The dispatched SIMD butterflies are bit-for-bit identical to
    /// this path by construction; it exists so tests can assert that
    /// and benchmarks can measure the speedup. Non-power-of-two
    /// (Bluestein) plans take their regular path — their internal
    /// radix-2 transforms dispatch normally.
    pub fn forward_scalar(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "fft: buffer length mismatch");
        match &self.kind {
            Kind::Identity => {}
            Kind::Radix2(r) => r.transform_scalar(data, Direction::Forward),
            Kind::Bluestein(b) => b.forward(data),
        }
    }

    /// [`Fft::inverse`] through the lane-serial reference kernels (see
    /// [`Fft::forward_scalar`]).
    pub fn inverse_scalar(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "fft: buffer length mismatch");
        match &self.kind {
            Kind::Identity => {}
            Kind::Radix2(r) => {
                r.transform_scalar(data, Direction::Inverse);
                let s = 1.0 / self.n as f64;
                for v in data.iter_mut() {
                    *v = v.scale(s);
                }
            }
            Kind::Bluestein(b) => b.inverse(data),
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Forward,
    Inverse,
}

/// Iterative radix-2 Cooley–Tukey with cached twiddles.
struct Radix2 {
    n: usize,
    /// Bit-reversal permutation targets: `rev[i]` is `i` with log2(n) bits
    /// reversed.
    rev: Vec<u32>,
    /// Forward twiddles, stage-contiguous: the stage with butterfly
    /// half-width `h` owns `[h-1, 2h-1)`, holding `e^{-2πik/2h}` for
    /// `k < h`. `n - 1` entries total, unit stride within a stage.
    twiddles: Vec<Complex>,
}

impl Radix2 {
    fn new(n: usize) -> Self {
        debug_assert!(n.is_power_of_two() && n >= 2);
        let bits = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for (i, r) in rev.iter_mut().enumerate() {
            *r = (i as u32).reverse_bits() >> (32 - bits);
        }
        let mut twiddles = Vec::with_capacity(n - 1);
        let mut half = 1usize;
        while half < n {
            let width = 2 * half;
            // Same angle expression the strided table used, so planned
            // twiddle values are unchanged by the layout switch.
            twiddles.extend(
                (0..half)
                    .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / width as f64)),
            );
            half *= 2;
        }
        Radix2 { n, rev, twiddles }
    }

    /// Swap elements into bit-reversed order (once per pair).
    fn bit_reverse(&self, data: &mut [Complex]) {
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    fn transform(&self, data: &mut [Complex], dir: Direction) {
        self.bit_reverse(data);
        let conj = dir == Direction::Inverse;
        // Butterfly stages: half-width doubles each stage, each reading
        // its stage-contiguous twiddle block at unit stride.
        let mut half = 1usize;
        while half < self.n {
            kernel::stage(data, half, &self.twiddles[half - 1..2 * half - 1], conj);
            half *= 2;
        }
    }

    /// [`Radix2::transform`] forced through the scalar reference
    /// kernels (bit-identical to the dispatched path by construction).
    fn transform_scalar(&self, data: &mut [Complex], dir: Direction) {
        self.bit_reverse(data);
        let conj = dir == Direction::Inverse;
        let mut half = 1usize;
        while half < self.n {
            kernel::stage_scalar(data, half, &self.twiddles[half - 1..2 * half - 1], conj);
            half *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft_naive, idft_naive};

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64).sin() + 0.3, (i as f64 * 0.7).cos()))
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn radix2_matches_naive_dft() {
        for n in [2usize, 4, 8, 16, 64, 256] {
            let x = ramp(n);
            let mut fast = x.clone();
            Fft::new(n).forward(&mut fast);
            let slow = dft_naive(&x);
            assert_close(&fast, &slow, 1e-9 * n as f64);
        }
    }

    #[test]
    fn bluestein_sizes_match_naive_dft() {
        for n in [3usize, 5, 6, 7, 12, 15, 100] {
            let x = ramp(n);
            let mut fast = x.clone();
            Fft::new(n).forward(&mut fast);
            let slow = dft_naive(&x);
            assert_close(&fast, &slow, 1e-8 * n as f64);
        }
    }

    #[test]
    fn forward_inverse_roundtrip_all_sizes() {
        for n in [1usize, 2, 3, 4, 5, 8, 12, 17, 32, 100, 128] {
            let x = ramp(n);
            let mut buf = x.clone();
            let plan = Fft::new(n);
            plan.forward(&mut buf);
            plan.inverse(&mut buf);
            assert_close(&buf, &x, 1e-10 * (n.max(1)) as f64);
        }
    }

    #[test]
    fn inverse_matches_naive_idft() {
        for n in [8usize, 12] {
            let x = ramp(n);
            let mut fast = x.clone();
            Fft::new(n).inverse(&mut fast);
            let slow = idft_naive(&x);
            assert_close(&fast, &slow, 1e-10 * n as f64);
        }
    }

    #[test]
    fn unnormalized_inverse_differs_by_n() {
        let n = 16;
        let x = ramp(n);
        let plan = Fft::new(n);
        let mut a = x.clone();
        plan.inverse(&mut a);
        let mut b = x;
        plan.inverse_unnormalized(&mut b);
        for (u, v) in a.iter().zip(&b) {
            assert!((u.scale(n as f64) - *v).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 64;
        let x = ramp(n);
        let mut spec = x.clone();
        Fft::new(n).forward(&mut spec);
        let e_time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((e_time - e_freq).abs() < 1e-9 * e_time);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a = ramp(n);
        let b: Vec<Complex> = ramp(n).iter().map(|z| z.conj()).collect();
        let plan = Fft::new(n);
        let mut fa = a.clone();
        plan.forward(&mut fa);
        let mut fb = b.clone();
        plan.forward(&mut fb);
        let mut fab: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + y.scale(2.0)).collect();
        plan.forward(&mut fab);
        for i in 0..n {
            assert!((fab[i] - (fa[i] + fb[i].scale(2.0))).abs() < 1e-9);
        }
    }

    #[test]
    fn length_zero_and_one_are_identity() {
        let plan0 = Fft::new(0);
        let mut empty: Vec<Complex> = vec![];
        plan0.forward(&mut empty);
        assert!(plan0.is_empty());
        let plan1 = Fft::new(1);
        let mut one = vec![Complex::new(3.0, -2.0)];
        plan1.forward(&mut one);
        plan1.inverse(&mut one);
        assert_eq!(one[0], Complex::new(3.0, -2.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_buffer_length_panics() {
        let plan = Fft::new(8);
        let mut buf = vec![Complex::default(); 7];
        plan.forward(&mut buf);
    }

    #[test]
    fn dispatched_transforms_match_scalar_bit_for_bit() {
        // The SIMD butterflies must reproduce the scalar reference
        // exactly — not within tolerance — at every planned size, both
        // directions, including the bit-reversal and normalization
        // around the kernels.
        for n in [2usize, 4, 8, 16, 32, 128, 1024, 4096] {
            let x = ramp(n);
            let plan = Fft::new(n);
            let mut fast = x.clone();
            let mut slow = x.clone();
            plan.forward(&mut fast);
            plan.forward_scalar(&mut slow);
            for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
                assert_eq!(
                    (f.re.to_bits(), f.im.to_bits()),
                    (s.re.to_bits(), s.im.to_bits()),
                    "forward n={n} elem {i}: {f} vs {s}"
                );
            }
            plan.inverse(&mut fast);
            plan.inverse_scalar(&mut slow);
            for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
                assert_eq!(
                    (f.re.to_bits(), f.im.to_bits()),
                    (s.re.to_bits(), s.im.to_bits()),
                    "inverse n={n} elem {i}: {f} vs {s}"
                );
            }
        }
    }

    #[test]
    fn scalar_reference_matches_naive_dft() {
        // Anchors the reference path itself, so the bit-equality test
        // above transitively anchors the SIMD path to the mathematics.
        for n in [8usize, 64, 256] {
            let x = ramp(n);
            let mut fast = x.clone();
            Fft::new(n).forward_scalar(&mut fast);
            let slow = dft_naive(&x);
            assert_close(&fast, &slow, 1e-9 * n as f64);
        }
    }

    #[test]
    fn time_shift_theorem() {
        // Shifting input rotates phases: X_shifted[k] = X[k] e^{-2πik s/n}.
        let n = 32;
        let s = 5usize;
        let x = ramp(n);
        let shifted: Vec<Complex> = (0..n).map(|i| x[(i + s) % n]).collect();
        let plan = Fft::new(n);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fs = shifted;
        plan.forward(&mut fs);
        for k in 0..n {
            let rot = Complex::cis(2.0 * std::f64::consts::PI * (k * s) as f64 / n as f64);
            assert!((fs[k] - fx[k] * rot).abs() < 1e-8);
        }
    }
}
