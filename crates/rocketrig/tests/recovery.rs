//! End-to-end fault recovery: a rocketrig run that loses a rank
//! mid-flight must revoke, shrink, restore the last checkpoint, and
//! finish — with physics matching a fault-free run of the same deck.

use beatnik_comm::{FaultPlan, World};
use beatnik_rocketrig::{run_rig, run_rig_ft, RigConfig, FT_RECV_TIMEOUT};

/// Rank-count-sensitive reduction orders (the distributed FFT sums in a
/// different order on 3 ranks than on 4) bound how closely the recovered
/// run can match the reference; everything above this is a real
/// divergence (wrong restore step, stale state, lost vorticity).
const TOL: f64 = 1e-8;

fn config(dir: &std::path::Path) -> RigConfig {
    let mut cfg = RigConfig {
        mesh_n: 16,
        steps: 8,
        diag_every: 1,
        out_dir: dir.to_path_buf(),
        ..RigConfig::default()
    };
    cfg.params.dt = 1e-3;
    cfg
}

#[test]
fn killed_run_recovers_from_checkpoint_and_matches_clean_run() {
    let dir = std::env::temp_dir().join("beatnik_recovery_test");
    std::fs::create_dir_all(&dir).unwrap();

    // Fault-free reference on the full world.
    let cfg = config(&dir);
    let clean = World::builder(4).run(move |comm| run_rig(&comm, &cfg))
        .into_iter()
        .next()
        .expect("reference log");

    // Faulted run: rank 2 dies at the start of step 5. The survivors
    // revoke, shrink to 3 ranks, restore the step-4 checkpoint, and
    // replay steps 5..8.
    let cfg = config(&dir);
    let ckpt = dir.join("checkpoint.json");
    let _ = std::fs::remove_file(&ckpt);
    let plan = FaultPlan::parse("kill:r2@step5", 0).expect("static plan");
    let report = World::builder(4).recv_timeout(FT_RECV_TIMEOUT).fault_plan(&plan).run_ft(move |comm| {
        run_rig_ft(comm, &cfg, 2, &ckpt)
    });
    assert_eq!(report.killed, [2], "the kill must land");
    let recovered = report
        .results
        .into_iter()
        .flatten()
        .next()
        .expect("a survivor must produce a log");

    // Every step of the faulted run — including the replayed ones —
    // must match the clean reference.
    assert_eq!(recovered.steps.len(), clean.steps.len());
    for (got, want) in recovered.steps.iter().zip(&clean.steps) {
        assert_eq!(got.step, want.step);
        let da = (got.diagnostics.amplitude - want.diagnostics.amplitude).abs();
        let de = (got.diagnostics.enstrophy - want.diagnostics.enstrophy).abs();
        assert!(
            da < TOL && de < TOL,
            "step {}: recovered diverged from clean run \
             (amplitude Δ={da:.3e}, enstrophy Δ={de:.3e})",
            got.step
        );
    }
}
