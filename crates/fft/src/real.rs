//! Real-input transforms via Hermitian symmetry.
//!
//! The Z-Model's fields (vorticity, heights, |V|²) are real, so their
//! spectra are Hermitian and half the complex work is redundant. This
//! module provides:
//!
//! * [`rfft`] / [`irfft`] — real→half-spectrum and back, using the
//!   classic pack-two-reals trick: an even/odd split of one length-`n`
//!   real signal through a length-`n/2` complex transform;
//! * [`rfft_pair`] — two real signals of length `n` through a *single*
//!   length-`n` complex transform (the workhorse for transforming the
//!   two vorticity components together, halving the low-order solver's
//!   transform count).

use crate::complex::Complex;
use crate::plan::Fft;

/// Planned real-input FFT of even length `n` (half-spectrum output of
/// `n/2 + 1` bins).
pub struct RealFft {
    n: usize,
    half_plan: Fft,
    /// Twiddles `e^{-πik/ (n/2) /2}`… the post-processing factors
    /// `e^{-2πik/n}` for the split-radix recombination.
    twiddles: Vec<Complex>,
}

impl RealFft {
    /// Plan for even `n ≥ 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2 && n.is_multiple_of(2), "real fft requires even length >= 2");
        let twiddles = (0..n / 2)
            .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        RealFft {
            n,
            half_plan: Fft::new(n / 2),
            twiddles,
        }
    }

    /// Input length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the planned length is zero (never true; kept for API
    /// symmetry with `Fft`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward transform: `n` reals → `n/2 + 1` spectrum bins
    /// (bins `0..=n/2`; the rest follow from `X[n−k] = conj(X[k])`).
    pub fn forward(&self, input: &[f64]) -> Vec<Complex> {
        assert_eq!(input.len(), self.n, "real fft: length mismatch");
        let half = self.n / 2;
        // Pack even samples into re, odd into im.
        let mut z: Vec<Complex> = (0..half)
            .map(|i| Complex::new(input[2 * i], input[2 * i + 1]))
            .collect();
        self.half_plan.forward(&mut z);
        // Unpack: X[k] = E[k] + e^{-2πik/n}·O[k], where E/O come from the
        // Hermitian split of the packed transform.
        let mut out = Vec::with_capacity(half + 1);
        for k in 0..=half {
            let zk = z[k % half];
            let znk = z[(half - k) % half].conj();
            let e = (zk + znk).scale(0.5);
            let o = (zk - znk) * Complex::new(0.0, -0.5);
            let w = if k == half {
                Complex::new(-1.0, 0.0)
            } else {
                self.twiddles[k]
            };
            out.push(e + w * o);
        }
        out
    }

    /// Inverse transform: `n/2 + 1` spectrum bins → `n` reals
    /// (normalized by `1/n`).
    pub fn inverse(&self, spectrum: &[Complex]) -> Vec<f64> {
        let half = self.n / 2;
        assert_eq!(spectrum.len(), half + 1, "real ifft: length mismatch");
        // Repack the half spectrum into the length-n/2 complex transform.
        let mut z = Vec::with_capacity(half);
        // Invert the recombination: E[k] = (X[k] + conj(X[h−k]))/2 and
        // O[k] = conj(w_k)·(X[k] − conj(X[h−k]))/2 (w is unimodular, so
        // w⁻¹ = conj(w)), then Z[k] = E[k] + i·O[k].
        for k in 0..half {
            let xk = spectrum[k];
            let xnk = spectrum[half - k].conj();
            let e = (xk + xnk).scale(0.5);
            let o = (xk - xnk).scale(0.5) * self.twiddles[k].conj();
            z.push(e + Complex::new(0.0, 1.0) * o);
        }
        self.half_plan.inverse(&mut z);
        let mut out = Vec::with_capacity(self.n);
        for v in z {
            out.push(v.re);
            out.push(v.im);
        }
        out
    }
}

/// Transform two real signals with one complex FFT: pack `a + i·b`,
/// transform, split by Hermitian symmetry. Returns full-length spectra
/// of `a` and `b`.
pub fn rfft_pair(plan: &Fft, a: &[f64], b: &[f64]) -> (Vec<Complex>, Vec<Complex>) {
    let n = plan.len();
    assert_eq!(a.len(), n, "rfft_pair: length mismatch");
    assert_eq!(b.len(), n, "rfft_pair: length mismatch");
    let mut z: Vec<Complex> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| Complex::new(x, y))
        .collect();
    plan.forward(&mut z);
    let mut fa = Vec::with_capacity(n);
    let mut fb = Vec::with_capacity(n);
    for k in 0..n {
        let zk = z[k];
        let znk = z[(n - k) % n].conj();
        fa.push((zk + znk).scale(0.5));
        fb.push((zk - znk) * Complex::new(0.0, -0.5));
    }
    (fa, fb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;

    fn real_signal(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.73).sin() + 0.2 * i as f64).collect()
    }

    #[test]
    fn rfft_matches_complex_fft_half_spectrum() {
        for n in [2usize, 4, 8, 16, 64, 128] {
            let x = real_signal(n);
            let plan = RealFft::new(n);
            let half = plan.forward(&x);
            let full = dft_naive(&x.iter().map(|&v| Complex::real(v)).collect::<Vec<_>>());
            assert_eq!(half.len(), n / 2 + 1);
            for k in 0..=n / 2 {
                assert!(
                    (half[k] - full[k]).abs() < 1e-9 * (1.0 + full[k].abs()),
                    "n={n} k={k}: {} vs {}",
                    half[k],
                    full[k]
                );
            }
        }
    }

    #[test]
    fn rfft_roundtrip() {
        for n in [4usize, 8, 32, 100] {
            let x = real_signal(n);
            let plan = RealFft::new(n);
            let back = plan.inverse(&plan.forward(&x));
            for (a, b) in back.iter().zip(&x) {
                assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "n={n}");
            }
        }
    }

    #[test]
    fn rfft_pair_matches_individual_transforms() {
        for n in [8usize, 16, 60] {
            let a = real_signal(n);
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.37).cos()).collect();
            let plan = Fft::new(n);
            let (fa, fb) = rfft_pair(&plan, &a, &b);
            let sa = dft_naive(&a.iter().map(|&v| Complex::real(v)).collect::<Vec<_>>());
            let sb = dft_naive(&b.iter().map(|&v| Complex::real(v)).collect::<Vec<_>>());
            for k in 0..n {
                assert!((fa[k] - sa[k]).abs() < 1e-8 * (1.0 + sa[k].abs()), "a n={n} k={k}");
                assert!((fb[k] - sb[k]).abs() < 1e-8 * (1.0 + sb[k].abs()), "b n={n} k={k}");
            }
        }
    }

    #[test]
    fn spectrum_of_real_input_is_hermitian() {
        let n = 32;
        let x = real_signal(n);
        let plan = Fft::new(n);
        let (fa, _) = rfft_pair(&plan, &x, &vec![0.0; n]);
        for k in 1..n {
            assert!((fa[k] - fa[n - k].conj()).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_lengths_rejected() {
        let _ = RealFft::new(7);
    }
}
