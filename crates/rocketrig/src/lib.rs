//! # beatnik-rocketrig — the driver program (paper §4)
//!
//! The rocket-rig problem: two fluids of different densities accelerated
//! along z, Rayleigh–Taylor instabilities developing on their interface.
//! This crate provides the paper's two input decks, a config/CLI layer,
//! and the run loop wiring solvers to I/O — the ~700-line driver the
//! paper describes, in library form so the examples and benchmarks can
//! reuse it.
//!
//! The paper's four benchmark test cases map to deck + order + solver
//! combinations (see [`BenchCase`]):
//!
//! 1. multi-mode low-order **weak** scaling — FFT all-to-all bandwidth;
//! 2. multi-mode low-order **strong** scaling — all-to-all latency;
//! 3. multi-mode high-order (cutoff) **weak** scaling — general comm
//!    scalability;
//! 4. single-mode high-order (cutoff) **strong** scaling — load
//!    imbalance, dynamic irregular communication.

use beatnik_comm::Communicator;
use beatnik_core::solver::BrChoice;
use beatnik_core::{Diagnostics, InitialCondition, Order, Params, Solver, SolverConfig};
use beatnik_dfft::FftConfig;
use beatnik_io::stats::{RunLog, StepRecord};
use beatnik_json::{impl_json_struct, impl_json_unit_enum};
use beatnik_mesh::{BoundaryCondition, SpatialMesh, SurfaceMesh};
use std::path::PathBuf;

pub mod cli;
pub mod serve_driver;

pub use cli::{parse_args, parse_serve_args, CliOptions, ServeOptions, SERVE_USAGE};
pub use serve_driver::RigRunner;

/// The two paper input decks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deck {
    /// Multi-mode periodic rocket rig (paper Fig. 1): even point
    /// distribution, FFT-friendly.
    MultiModePeriodic,
    /// Single-mode non-periodic rocket rig (paper Fig. 2): develops
    /// rollup and load imbalance; requires a high-order solver.
    SingleModeOpen,
}

impl_json_unit_enum!(Deck { MultiModePeriodic, SingleModeOpen });

impl Deck {
    /// The x/y/z domain box the paper uses for this deck family:
    /// `(-19…19)³` for low-order decks, `(-3…3)³` for high-order decks.
    pub fn domain(&self, order: Order) -> ([f64; 3], [f64; 3]) {
        match order {
            Order::Low => ([-19.0, -19.0, -19.0], [19.0, 19.0, 19.0]),
            Order::Medium | Order::High => ([-3.0, -3.0, -3.0], [3.0, 3.0, 3.0]),
        }
    }

    /// The initial condition for this deck.
    pub fn initial_condition(&self) -> InitialCondition {
        match self {
            Deck::MultiModePeriodic => InitialCondition::MultiMode {
                amplitude: 0.05,
                modes: 4,
                seed: 1984,
            },
            Deck::SingleModeOpen => InitialCondition::SingleMode {
                amplitude: 0.20,
                modes: [1.0, 1.0],
            },
        }
    }

    /// Whether the deck is periodic.
    pub fn periodic(&self) -> bool {
        matches!(self, Deck::MultiModePeriodic)
    }
}

/// Full run configuration.
#[derive(Debug, Clone)]
pub struct RigConfig {
    /// Which input deck.
    pub deck: Deck,
    /// Model order.
    pub order: Order,
    /// Surface mesh nodes per axis.
    pub mesh_n: usize,
    /// Timesteps to run.
    pub steps: usize,
    /// Use the cutoff solver (vs. exact) for medium/high order.
    pub cutoff_solver: bool,
    /// Use the Barnes–Hut tree solver with this opening angle instead
    /// (overrides `cutoff_solver` when set).
    pub tree_theta: Option<f64>,
    /// Use the RCB load-balanced cutoff solver instead of the uniform
    /// grid (applies when `cutoff_solver` is set).
    pub balanced: bool,
    /// Physical and numerical parameters.
    pub params: Params,
    /// Distributed-FFT tuning.
    pub fft: FftConfig,
    /// Record diagnostics every this many steps (0 = never).
    pub diag_every: usize,
    /// Also record ownership distributions when recording diagnostics.
    pub record_ownership: bool,
    /// Number of *virtual* spatial ranks to bin ownership into (the paper
    /// measures against 256 regions regardless of where the job runs).
    /// `None` bins into the actual rank count.
    pub ownership_ranks: Option<usize>,
    /// Write a VTK dump every this many steps (0 = never).
    pub vtk_every: usize,
    /// Output directory for VTK/JSON artifacts.
    pub out_dir: PathBuf,
    /// Flush live metrics (OpenMetrics text plus a JSON twin) here.
    pub metrics_path: Option<PathBuf>,
    /// Rewrite the metrics files every this many steps (0 = only at the
    /// final step). Applies when `metrics_path` is set.
    pub metrics_every: usize,
}

impl_json_struct!(RigConfig {
    deck,
    order,
    mesh_n,
    steps,
    cutoff_solver,
    tree_theta,
    balanced,
    params,
    fft,
    diag_every,
    record_ownership,
    ownership_ranks,
    vtk_every,
    out_dir,
    metrics_path,
    metrics_every,
});

impl Default for RigConfig {
    fn default() -> Self {
        RigConfig {
            deck: Deck::MultiModePeriodic,
            order: Order::Low,
            mesh_n: 64,
            steps: 20,
            cutoff_solver: true,
            tree_theta: None,
            balanced: false,
            params: Params::default(),
            fft: FftConfig::default(),
            diag_every: 1,
            record_ownership: false,
            ownership_ranks: None,
            vtk_every: 0,
            out_dir: PathBuf::from("rocketrig-out"),
            metrics_path: None,
            metrics_every: 0,
        }
    }
}

impl RigConfig {
    /// The spatial mesh matching this config's domain and rank count
    /// (used by the cutoff solver and the ownership diagnostics).
    pub fn spatial_mesh(&self, ranks: usize) -> SpatialMesh {
        let (lo, hi) = self.deck.domain(self.order);
        SpatialMesh::new(lo, hi, beatnik_comm::dims_create(ranks))
    }

    /// Build the [`SolverConfig`] equivalent of this run.
    pub fn solver_config(&self) -> SolverConfig {
        let br = if !self.order.needs_br_solver() {
            BrChoice::None
        } else if let Some(theta) = self.tree_theta {
            BrChoice::Tree { theta }
        } else if self.cutoff_solver && self.balanced {
            BrChoice::BalancedCutoff {
                bounds: self.deck.domain(self.order),
            }
        } else if self.cutoff_solver {
            BrChoice::Cutoff {
                bounds: self.deck.domain(self.order),
            }
        } else {
            BrChoice::Exact
        };
        SolverConfig {
            order: self.order,
            br,
            params: self.params,
            fft: self.fft,
            ic: self.deck.initial_condition(),
        }
    }

    /// Construct the surface mesh for one rank. Collective.
    pub fn build_mesh(&self, comm: &Communicator) -> SurfaceMesh {
        let (lo, hi) = self.deck.domain(self.order);
        let periodic = self.deck.periodic();
        SurfaceMesh::new(
            comm,
            [self.mesh_n, self.mesh_n],
            [periodic, periodic],
            2,
            [lo[1], lo[0]],
            [hi[1], hi[0]],
        )
    }

    /// The boundary condition for this deck.
    pub fn boundary_condition(&self) -> BoundaryCondition {
        let (lo, hi) = self.deck.domain(self.order);
        if self.deck.periodic() {
            BoundaryCondition::Periodic {
                periods: [hi[1] - lo[1], hi[0] - lo[0]],
            }
        } else {
            BoundaryCondition::Free
        }
    }
}

/// Run a configured rocket-rig simulation on this rank. Returns the run
/// log (identical on every rank). Collective.
pub fn run_rig(comm: &Communicator, cfg: &RigConfig) -> RunLog {
    let mesh = cfg.build_mesh(comm);
    let bc = cfg.boundary_condition();
    let mut solver = Solver::new(mesh, bc, cfg.solver_config());
    let smesh = cfg.spatial_mesh(cfg.ownership_ranks.unwrap_or_else(|| comm.size()));
    let mut log = RunLog::new(format!(
        "{:?}/{}/{}^2/{} steps",
        cfg.deck, cfg.order, cfg.mesh_n, cfg.steps
    ));

    if cfg.vtk_every > 0 && comm.rank() == 0 {
        std::fs::create_dir_all(&cfg.out_dir).expect("cannot create output dir");
    }

    for _ in 0..cfg.steps {
        solver.step();
        let s = solver.step_count();
        if cfg.diag_every > 0 && s.is_multiple_of(cfg.diag_every) {
            let ownership = cfg
                .record_ownership
                .then(|| beatnik_core::diagnostics::ownership_fractions(solver.problem(), &smesh));
            log.push(StepRecord {
                step: s,
                time: solver.time(),
                diagnostics: Diagnostics::compute(solver.problem()),
                ownership,
            });
        }
        if cfg.vtk_every > 0 && s.is_multiple_of(cfg.vtk_every) {
            let path = cfg.out_dir.join(format!("surface_{s:05}.vtk"));
            beatnik_io::vtk::write_vtk(solver.problem(), path).expect("vtk write failed");
        }
        maybe_flush_metrics(comm, cfg, s);
    }
    log
}

/// Flush the live metrics files when the step cadence (or the final
/// step) asks for it. Rank 0 only; a no-op outside a `World` runner.
fn maybe_flush_metrics(comm: &Communicator, cfg: &RigConfig, step: usize) {
    let Some(path) = &cfg.metrics_path else {
        return;
    };
    let due = step == cfg.steps
        || (cfg.metrics_every > 0 && step.is_multiple_of(cfg.metrics_every));
    if comm.rank() != 0 || !due {
        return;
    }
    flush_metrics(comm, path);
}

/// Write a live snapshot of the world's metrics plane: OpenMetrics text
/// exposition at `path` and a JSON twin at `<path>.json`. Scrapers tail
/// the text file; scripts read the JSON. No-op when the communicator
/// has no metrics plane (built outside a `World` runner).
pub fn flush_metrics(comm: &Communicator, path: &std::path::Path) {
    let Some(snap) = comm.metrics_snapshot() else {
        return;
    };
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    beatnik_io::write_openmetrics(&snap, path).expect("metrics write failed");
    let name = path
        .file_name()
        .and_then(|s| s.to_str())
        .unwrap_or("metrics");
    let json = path.with_file_name(format!("{name}.json"));
    beatnik_io::write_metrics_json(&snap, &json).expect("metrics JSON write failed");
}

/// Receive deadline used by the fault-tolerant driver: long enough for
/// any smoke-scale solver step, short enough that a dropped message is
/// detected and recovered from in CI time rather than the plain runner's
/// two-minute deadlock window.
pub const FT_RECV_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(15);

/// Attempt cap for the fault-tolerant driver: each rank death or dropped
/// message costs one restart, so a bounded plan converges well under
/// this; an unbounded retry loop would mask a genuine solver bug.
const MAX_FT_ATTEMPTS: usize = 8;

/// Fault-tolerant driver loop (the ULFM recovery pattern): run the rig,
/// checkpointing every `checkpoint_every` steps to `ckpt_path`, and when
/// a peer rank dies mid-step, revoke the communicator, shrink to the
/// agreed survivor group, rebuild the solver at the smaller world size,
/// and restart from the last complete checkpoint. Message-loss timeouts
/// recover the same way (the "shrunk" group is simply everyone, on a
/// fresh communicator with clean mailboxes).
///
/// Survivors return the run log for the completed simulation; a rank
/// killed by fault injection never returns (its `RankKilled` panic
/// propagates to [`beatnik_comm::WorldBuilder::run_ft`], which records it).
/// Each recovery epoch is stamped as a `recovery` telemetry phase span.
///
/// # Panics
/// Propagates non-failure panics (genuine bugs), and gives up with a
/// panic after [`MAX_FT_ATTEMPTS`] restarts.
pub fn run_rig_ft(
    comm: Communicator,
    cfg: &RigConfig,
    checkpoint_every: usize,
    ckpt_path: &std::path::Path,
) -> RunLog {
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    let mut comm = comm;
    let mut log = RunLog::new(format!(
        "{:?}/{}/{}^2/{} steps (fault-tolerant)",
        cfg.deck, cfg.order, cfg.mesh_n, cfg.steps
    ));
    for _attempt in 0..MAX_FT_ATTEMPTS {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_ft_attempt(&comm, cfg, checkpoint_every, ckpt_path, &mut log)
        }));
        match outcome {
            Ok(()) => return log,
            Err(p) => {
                if p.downcast_ref::<beatnik_comm::RankKilled>().is_some() {
                    // This rank is the casualty: die for real so the world
                    // runner records it.
                    resume_unwind(p);
                }
                let failure = p.downcast_ref::<beatnik_comm::CollectiveFailed>().is_some();
                let deadlock = p
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.contains(" deadlock on rank "));
                if !failure && !deadlock {
                    resume_unwind(p); // a genuine bug, not a peer failure
                }
                comm = recover(&comm);
            }
        }
    }
    panic!(
        "rank {} giving up after {MAX_FT_ATTEMPTS} recovery attempts",
        comm.rank()
    );
}

/// One run attempt on the current communicator: (re)build the solver,
/// restore the newest checkpoint if one exists, and step to completion,
/// checkpointing on the configured cadence. Log records for recomputed
/// steps replace the ones lost to the failure.
fn run_ft_attempt(
    comm: &Communicator,
    cfg: &RigConfig,
    checkpoint_every: usize,
    ckpt_path: &std::path::Path,
    log: &mut RunLog,
) {
    let mesh = cfg.build_mesh(comm);
    let bc = cfg.boundary_condition();
    let mut solver = Solver::new(mesh, bc, cfg.solver_config());
    if ckpt_path.exists() {
        let (step, time) = beatnik_io::checkpoint::load(solver.problem_mut(), ckpt_path)
            .expect("checkpoint restore failed");
        solver.restore_clock(step, time);
    }
    let start_step = solver.step_count();
    log.steps.retain(|r| r.step <= start_step);
    let smesh = cfg.spatial_mesh(cfg.ownership_ranks.unwrap_or_else(|| comm.size()));

    while solver.step_count() < cfg.steps {
        // Step-triggered kills fire at the start of the step (1-based).
        comm.fault_step(solver.step_count() as u64 + 1);
        solver.step();
        let s = solver.step_count();
        if cfg.diag_every > 0 && s.is_multiple_of(cfg.diag_every) {
            let ownership = cfg
                .record_ownership
                .then(|| beatnik_core::diagnostics::ownership_fractions(solver.problem(), &smesh));
            log.push(StepRecord {
                step: s,
                time: solver.time(),
                diagnostics: Diagnostics::compute(solver.problem()),
                ownership,
            });
        }
        if checkpoint_every > 0 && s.is_multiple_of(checkpoint_every) {
            beatnik_io::checkpoint::save(solver.problem(), s, solver.time(), ckpt_path)
                .expect("checkpoint write failed");
        }
        maybe_flush_metrics(comm, cfg, s);
    }
}

/// Recovery epoch: revoke the damaged communicator (so stragglers blocked
/// in its collectives fail fast instead of timing out), then shrink to
/// the agreed survivor group, retrying while agreement itself is racing a
/// new failure. Spanned as a `recovery` telemetry phase.
fn recover(comm: &Communicator) -> Communicator {
    let telemetry = std::sync::Arc::clone(comm.telemetry());
    let _span = telemetry.phase(beatnik_comm::RECOVERY_PHASE);
    comm.revoke();
    for _ in 0..MAX_FT_ATTEMPTS {
        match comm.shrink() {
            Ok(next) => return next,
            Err(beatnik_comm::CommError::Timeout { .. }) => continue,
            Err(e) => panic!("recovery failed on rank {}: {e}", comm.rank()),
        }
    }
    panic!("rank {} could not agree on a survivor group", comm.rank());
}

/// The paper's four benchmark test cases (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchCase {
    /// Multi-mode low-order weak scaling (network bandwidth).
    LowOrderWeak,
    /// Multi-mode low-order strong scaling (network latency).
    LowOrderStrong,
    /// Multi-mode high-order (cutoff) weak scaling (general scalability).
    CutoffWeak,
    /// Single-mode high-order (cutoff) strong scaling (load imbalance).
    CutoffStrong,
}

impl_json_unit_enum!(BenchCase {
    LowOrderWeak,
    LowOrderStrong,
    CutoffWeak,
    CutoffStrong,
});

impl BenchCase {
    /// A laptop-scale configuration for the case (the figure harnesses
    /// combine these with the analytic machine model for paper-scale
    /// numbers).
    pub fn config(&self, mesh_n: usize, steps: usize) -> RigConfig {
        let mut cfg = RigConfig {
            mesh_n,
            steps,
            ..RigConfig::default()
        };
        match self {
            BenchCase::LowOrderWeak | BenchCase::LowOrderStrong => {
                cfg.deck = Deck::MultiModePeriodic;
                cfg.order = Order::Low;
            }
            BenchCase::CutoffWeak => {
                cfg.deck = Deck::MultiModePeriodic;
                cfg.order = Order::High;
                cfg.cutoff_solver = true;
                cfg.params.cutoff = 0.2; // the paper's value for this case
                cfg.params.epsilon = 0.1;
            }
            BenchCase::CutoffStrong => {
                cfg.deck = Deck::SingleModeOpen;
                cfg.order = Order::High;
                cfg.cutoff_solver = true;
                cfg.params.cutoff = 0.5; // the paper's value
                cfg.params.epsilon = 0.1;
            }
        }
        cfg
    }

    /// All four cases.
    pub fn all() -> [BenchCase; 4] {
        [
            BenchCase::LowOrderWeak,
            BenchCase::LowOrderStrong,
            BenchCase::CutoffWeak,
            BenchCase::CutoffStrong,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_comm::World;

    #[test]
    fn decks_have_paper_domains() {
        let d = Deck::MultiModePeriodic;
        assert_eq!(d.domain(Order::Low).0, [-19.0; 3]);
        assert_eq!(d.domain(Order::High).1, [3.0; 3]);
        assert!(d.periodic());
        assert!(!Deck::SingleModeOpen.periodic());
    }

    #[test]
    fn multimode_low_order_runs_end_to_end() {
        World::builder(4).run(|comm| {
            let mut cfg = BenchCase::LowOrderWeak.config(16, 3);
            cfg.params.dt = 1e-3;
            let log = run_rig(&comm, &cfg);
            assert_eq!(log.steps.len(), 3);
            assert!(log.steps[2].diagnostics.amplitude.is_finite());
            assert!(log.steps[2].diagnostics.points == 256);
        });
    }

    #[test]
    fn singlemode_cutoff_runs_end_to_end_with_ownership() {
        World::builder(2).run(|comm| {
            let mut cfg = BenchCase::CutoffStrong.config(12, 2);
            cfg.params.dt = 1e-3;
            cfg.record_ownership = true;
            let log = run_rig(&comm, &cfg);
            assert_eq!(log.steps.len(), 2);
            let own = log.steps[1].ownership.as_ref().unwrap();
            assert_eq!(own.len(), 2);
            assert!((own.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        });
    }

    #[test]
    fn all_bench_cases_produce_valid_configs() {
        for case in BenchCase::all() {
            let cfg = case.config(16, 2);
            assert!(cfg.params.validate().is_ok(), "{case:?}");
            match case {
                BenchCase::LowOrderWeak | BenchCase::LowOrderStrong => {
                    assert_eq!(cfg.order, Order::Low)
                }
                _ => assert_eq!(cfg.order, Order::High),
            }
        }
    }

    #[test]
    fn vtk_output_is_written_when_requested() {
        World::builder(1).run(|comm| {
            let dir = std::env::temp_dir().join("beatnik_rig_vtk");
            let _ = std::fs::remove_dir_all(&dir);
            let mut cfg = BenchCase::LowOrderWeak.config(12, 2);
            cfg.params.dt = 1e-3;
            cfg.vtk_every = 2;
            cfg.out_dir = dir.clone();
            let _ = run_rig(&comm, &cfg);
            assert!(dir.join("surface_00002.vtk").exists());
        });
    }
}
