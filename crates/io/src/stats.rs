//! JSON run logs: per-step diagnostics and ownership distributions,
//! consumed by the figure harnesses and EXPERIMENTS.md tooling.

use beatnik_core::Diagnostics;
use beatnik_json::impl_json_struct;
use std::io::Write;
use std::path::Path;

/// One recorded timestep.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Completed step index.
    pub step: usize,
    /// Simulated time.
    pub time: f64,
    /// Global diagnostics at this step.
    pub diagnostics: Diagnostics,
    /// Optional per-spatial-rank ownership fractions (Figures 6/7);
    /// serialized as `null` when absent.
    pub ownership: Option<Vec<f64>>,
}

impl_json_struct!(StepRecord { step, time, diagnostics, ownership });

/// A whole run's record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunLog {
    /// Free-form description of the run configuration.
    pub label: String,
    /// Recorded steps in order.
    pub steps: Vec<StepRecord>,
}

impl_json_struct!(RunLog { label, steps });

impl RunLog {
    /// Create an empty log with a label.
    pub fn new(label: impl Into<String>) -> Self {
        RunLog {
            label: label.into(),
            steps: Vec::new(),
        }
    }

    /// Append a record.
    pub fn push(&mut self, rec: StepRecord) {
        self.steps.push(rec);
    }

    /// Serialize to pretty JSON at `path`.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut out = std::io::BufWriter::new(file);
        beatnik_json::to_writer_pretty(&mut out, self)?;
        out.flush()
    }

    /// Load from JSON.
    pub fn read_json(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        beatnik_json::from_str(&text).map_err(std::io::Error::other)
    }

    /// Estimate the exponential growth rate of the interface amplitude
    /// over the recorded window `[from, to]` (least-squares slope of
    /// `ln(amplitude)` vs time). Returns `None` with fewer than two
    /// usable samples.
    pub fn growth_rate(&self, from: usize, to: usize) -> Option<f64> {
        let pts: Vec<(f64, f64)> = self
            .steps
            .iter()
            .filter(|s| s.step >= from && s.step <= to && s.diagnostics.amplitude > 0.0)
            .map(|s| (s.time, s.diagnostics.amplitude.ln()))
            .collect();
        if pts.len() < 2 {
            return None;
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-300 {
            return None;
        }
        Some((n * sxy - sx * sy) / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(step: usize, time: f64, amplitude: f64) -> StepRecord {
        StepRecord {
            step,
            time,
            diagnostics: Diagnostics {
                amplitude,
                z_min: -amplitude,
                z_max: amplitude,
                enstrophy: 0.0,
                mean_height: 0.0,
                points: 100,
            },
            ownership: None,
        }
    }

    #[test]
    fn json_roundtrip() {
        let mut log = RunLog::new("test-run");
        log.push(record(1, 0.01, 1e-4));
        let mut r2 = record(2, 0.02, 2e-4);
        r2.ownership = Some(vec![0.5, 0.5]);
        log.push(r2);
        let dir = std::env::temp_dir().join("beatnik_stats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.json");
        log.write_json(&path).unwrap();
        let back = RunLog::read_json(&path).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn growth_rate_recovers_exponential() {
        let sigma = 1.4;
        let mut log = RunLog::new("growth");
        for s in 0..50 {
            let t = s as f64 * 0.01;
            log.push(record(s, t, 1e-4 * (sigma * t).exp()));
        }
        let est = log.growth_rate(0, 49).unwrap();
        assert!((est - sigma).abs() < 1e-9, "{est}");
        // Window restriction works.
        let est2 = log.growth_rate(10, 20).unwrap();
        assert!((est2 - sigma).abs() < 1e-9);
        // Degenerate windows yield None.
        assert!(log.growth_rate(60, 70).is_none());
    }
}
