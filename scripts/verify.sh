#!/usr/bin/env bash
# Repo verification gate: release build, full test suite, and lints.
# Hermetic — never touches the network.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy -- -D warnings =="
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== clippy not installed; skipping lints =="
fi

echo "== rocketrig --profile smoke (4 ranks, all three solver orders) =="
# Each order must emit a parseable Chrome trace containing the solver
# phases that order exercises; profile_check exits nonzero otherwise.
PROF_DIR="$(mktemp -d)"
trap 'rm -rf "$PROF_DIR"' EXIT
RIG=target/release/rocketrig
CHECK=target/release/profile_check

"$RIG" --order low --n 16 --steps 2 --ranks 4 \
    --profile "$PROF_DIR/low.json" \
    --metrics "$PROF_DIR/low-metrics.om" >/dev/null
"$CHECK" "$PROF_DIR/low.json" step dfft-forward dfft-inverse \
    dfft-redistribute

"$RIG" --order medium --n 16 --steps 2 --ranks 4 \
    --profile "$PROF_DIR/medium.json" \
    --metrics "$PROF_DIR/medium-metrics.om" >/dev/null
"$CHECK" "$PROF_DIR/medium.json" step br-cutoff migrate-to-spatial \
    halo-points migrate-home dfft-forward dfft-redistribute

"$RIG" --order high --solver exact --n 12 --steps 2 --ranks 4 \
    --profile "$PROF_DIR/high.json" \
    --metrics "$PROF_DIR/high-metrics.om" >/dev/null
"$CHECK" "$PROF_DIR/high.json" step br-exact br-ring-stage halo

for stem in low medium high; do
    test -s "$PROF_DIR/$stem-phases.csv"
    test -s "$PROF_DIR/$stem-skew.csv"
done

echo "== live-metrics smoke: OpenMetrics + comm-matrix + critical path =="
# Every order's metrics file must be well-formed OpenMetrics carrying
# the comm-matrix families, with the matrix CSV and per-step critical
# path alongside it.
for stem in low medium high; do
    om="$PROF_DIR/$stem-metrics.om"
    test -s "$om"
    tail -c 8 "$om" | grep -q '# EOF'
    grep -q '^# TYPE beatnik_comm_bytes counter' "$om"
    grep -q 'beatnik_comm_matrix_bytes_total{' "$om"
    grep -q 'beatnik_phase_entries_total{' "$om"
    test -s "$PROF_DIR/$stem-metrics.om.json"
    matrix="$PROF_DIR/$stem-metrics-matrix.csv"
    test -s "$matrix"
    head -1 "$matrix" | grep -q '^src,dst,phase,algo,messages,bytes$'
    test -s "$PROF_DIR/critical-path.json"
    grep -q '"critical_rank"' "$PROF_DIR/critical-path.json"
done

echo "== chaos smoke: kill rank 2 at step 5, recover via shrink+restart =="
# The run must exit 0 despite the death, report the injected kill, and
# stamp a recovery epoch into the Chrome trace.
# Capture to a file rather than piping into grep -q: -q exits at first
# match and the resulting broken pipe would fail the run under pipefail.
"$RIG" --n 16 --steps 8 --ranks 4 --faults kill:r2@step5 \
    --checkpoint-every 2 --out "$PROF_DIR/ftout" \
    --profile "$PROF_DIR/ftout/trace.json" > "$PROF_DIR/ftout.log"
grep -q 'ranks killed by fault injection: \[2\]' "$PROF_DIR/ftout.log"
grep -q '"recovery"' "$PROF_DIR/ftout/trace.json"
grep -q '"shrink"' "$PROF_DIR/ftout/trace.json"
test -s "$PROF_DIR/ftout/fault-events.json"

echo "== transport backend matrix: thread / shmem / tcp loopback =="
# The same small run must complete on every backend, both via the CLI
# flag and via BEATNIK_TRANSPORT; --procs gives each rank its own OS
# process over the wire backends.
"$RIG" --print-config > "$PROF_DIR/config.txt"
grep -Eq 'transport += thread \(BEATNIK_TRANSPORT\)' "$PROF_DIR/config.txt"
BEATNIK_TRANSPORT=tcp "$RIG" --print-config > "$PROF_DIR/config-tcp.txt"
grep -Eq 'transport += tcp' "$PROF_DIR/config-tcp.txt"
for backend in thread shmem tcp; do
    "$RIG" --transport "$backend" --n 16 --steps 2 --ranks 4 \
        --log "$PROF_DIR/$backend.json" >/dev/null
    test -s "$PROF_DIR/$backend.json"
done
BEATNIK_TRANSPORT=shmem "$RIG" --n 16 --steps 2 --ranks 4 >/dev/null
"$RIG" --transport shmem --procs --n 16 --steps 2 --ranks 2 \
    > "$PROF_DIR/procs-shmem.log"
grep -q 'process-ranks over shmem' "$PROF_DIR/procs-shmem.log"
"$RIG" --transport tcp --procs --n 16 --steps 2 --ranks 2 \
    > "$PROF_DIR/procs-tcp.log"
grep -q 'process-ranks over tcp' "$PROF_DIR/procs-tcp.log"

echo "== serve smoke: boot, 3 jobs via loadgen, scrape /metrics, SIGTERM =="
# The service must accept jobs over HTTP, run them all to completion,
# expose a well-formed OpenMetrics scrape, and drain cleanly on SIGTERM.
SERVE_ADDR=127.0.0.1:7947
"$RIG" serve --addr "$SERVE_ADDR" --pool 4 \
    --ckpt-dir "$PROF_DIR/serve-ckpt" > "$PROF_DIR/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q 'listening on' "$PROF_DIR/serve.log" && break
    sleep 0.1
done
grep -q 'listening on' "$PROF_DIR/serve.log"
target/release/loadgen --addr "$SERVE_ADDR" --jobs 3 --wait 60 \
    --expect-complete --scrape /metrics > "$PROF_DIR/serve-scrape.txt"
grep -q 'loadgen: submitted 3 jobs' "$PROF_DIR/serve-scrape.txt"
grep -q 'beatnik_serve_jobs_completed_total 3' "$PROF_DIR/serve-scrape.txt"
grep -q 'beatnik_serve_pool_ranks 4' "$PROF_DIR/serve-scrape.txt"
tail -c 8 "$PROF_DIR/serve-scrape.txt" | grep -q '# EOF'
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q 'rocketrig serve: bye' "$PROF_DIR/serve.log"

echo "== zero-copy smoke: owned sends copy nothing on thread + shmem =="
# The ownership-transfer invariant across the backend matrix: a 64 KiB
# isend_owned must report bytes_copied == 0 on every backend, with the
# payload charged to the handoff counter instead.
cargo test -q -p beatnik-comm --test transport owned_sends_report_zero_copies

echo "== transport microbench -> BENCH_comm.json =="
# Asserts internally: the owned ping-pong rows copied exactly zero
# payload bytes with the full payload on the handoff counter.
target/release/bench_comm BENCH_comm.json
test -s BENCH_comm.json
grep -q '"algo": "bruck"' BENCH_comm.json
grep -q '"transport": "shmem"' BENCH_comm.json
grep -q '"transport": "tcp"' BENCH_comm.json
grep -q '"op": "p2p_owned"' BENCH_comm.json

echo "== fault-tolerance bench -> BENCH_fault.json =="
target/release/bench_fault BENCH_fault.json
test -s BENCH_fault.json
grep -q '"metric": "detection_latency"' BENCH_fault.json
grep -q '"metric": "recovery_time"' BENCH_fault.json

echo "== multi-tenant serve bench -> BENCH_serve.json =="
# Asserts internally: >=1 demonstrated preemption whose resumed result
# matches an uninterrupted run to 1e-8, and zero lost jobs out of 200.
target/release/bench_serve BENCH_serve.json
test -s BENCH_serve.json
grep -q '"metric": "p99_latency"' BENCH_serve.json
grep -q '"lost_jobs": 0' BENCH_serve.json

echo "== compute-kernel bench -> BENCH_compute.json =="
# Rows pair each fast kernel (SIMD butterflies, tiled pack) with its
# measured reference so the gate pins both.
target/release/bench_compute BENCH_compute.json
test -s BENCH_compute.json
grep -q '"kernel": "fft_forward"' BENCH_compute.json
grep -q '"variant": "tiled"' BENCH_compute.json

echo "== bench regression gate vs crates/bench/baselines =="
# Fresh numbers above must stay under the committed-baseline ceilings
# (time-like: 2x + jitter floor; deterministic bytes: 1.10x with a
# 64-byte floor that pins the zero-copy rows at exactly zero).
target/release/bench_gate

echo "== criterion smoke: micro_br / micro_dfft =="
cargo bench --bench micro_br -- --test
cargo bench --bench micro_dfft -- --test

echo "verify: OK"
