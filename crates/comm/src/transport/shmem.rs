//! Shared-memory transport: memory-mapped SPSC byte rings, one per
//! ordered rank pair.
//!
//! Each ring is a plain file (`ring-<src>-<dst>`) under a shared
//! directory, mapped with `MAP_SHARED` so any process that opens it
//! sees the same bytes. The first two cachelines hold the consumer
//! (`head`) and producer (`tail`) cursors as monotonically increasing
//! byte counts; the rest is payload. Records are `u32` length-prefixed
//! wire frames (see [`super::wire`]) written with wraparound — the
//! producer publishes `tail` once per whole record, so a consumer that
//! observes `tail - head >= 4` always has a complete record to read.
//!
//! Two modes share the code:
//!
//! * **loopback** — all ranks are threads of this process; one poller
//!   drains every ring into the shared registry's mailboxes. Used by
//!   the backend test matrix so the full collective/fault suites
//!   exercise real serialization and real shared memory. Large
//!   wire-safe envelopes (at or above the world's eager limit) skip
//!   serialization entirely: the envelope is stashed in a
//!   process-local **handoff slab** and only a ~21-byte `HANDOFF`
//!   token rides the ring, so FIFO order against smaller serialized
//!   frames is preserved while the payload allocation moves by
//!   pointer — `bytes_copied_per_op == 0` for large messages, same as
//!   the thread backend. (A handoff frame also never hits the ring's
//!   frame-size ceiling, so loopback worlds can carry messages larger
//!   than the ring itself.)
//! * **per-process** ([`ShmemTransport::for_process`]) — each rank is
//!   its own process (spawned by [`crate::proc`]); the poller drains
//!   only rings addressed to the local rank, and failure-ledger news
//!   travels as CTRL frames through the same rings.
//!
//! No external crates: the two `mmap`/`munmap` calls are declared
//! directly against the C library that `std` already links.

use super::{wire, CtrlMsg, Route, Transport, TransportKind};
use crate::message::Envelope;
use crate::registry::Registry;
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Ring header size: one cacheline for `head`, one for `tail`.
const HEADER_BYTES: usize = 128;

/// Smallest ring we will build; below this the header dominates.
const MIN_RING_BYTES: usize = 4096;

#[cfg(unix)]
mod sys {
    use std::os::fd::RawFd;

    pub const PROT_READ: i32 = 0x1;
    pub const PROT_WRITE: i32 = 0x2;
    pub const MAP_SHARED: i32 = 0x01;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    /// Map `len` bytes of `fd` shared read/write.
    pub fn map_shared(fd: RawFd, len: usize) -> std::io::Result<*mut u8> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                fd,
                0,
            )
        };
        if ptr as isize == -1 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(ptr as *mut u8)
        }
    }

    /// Unmap a region mapped by [`map_shared`].
    pub fn unmap(ptr: *mut u8, len: usize) {
        unsafe {
            munmap(ptr as *mut core::ffi::c_void, len);
        }
    }
}

/// One memory-mapped SPSC ring. The producer side is serialized by
/// `write_lock` (belt and braces — in per-process mode only one thread
/// produces, but loopback worlds may publish ctrl news from any rank
/// thread); the consumer side is the single poller thread.
struct Ring {
    ptr: *mut u8,
    len: usize,
    capacity: u64,
    write_lock: Mutex<()>,
}

// The raw pointer is to a MAP_SHARED region whose concurrent access is
// disciplined by the head/tail cursors below.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Drop for Ring {
    fn drop(&mut self) {
        #[cfg(unix)]
        sys::unmap(self.ptr, self.len);
    }
}

impl Ring {
    #[cfg(unix)]
    fn open(path: &Path, ring_bytes: usize, create: bool) -> io::Result<Ring> {
        use std::os::fd::AsRawFd;
        assert!(
            ring_bytes >= MIN_RING_BYTES,
            "shm ring of {ring_bytes} bytes is below the {MIN_RING_BYTES}-byte minimum"
        );
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(create)
            .open(path)?;
        // Freshly created files are zero-filled, so head == tail == 0.
        file.set_len(ring_bytes as u64)?;
        let ptr = sys::map_shared(file.as_raw_fd(), ring_bytes)?;
        Ok(Ring {
            ptr,
            len: ring_bytes,
            capacity: (ring_bytes - HEADER_BYTES) as u64,
            write_lock: Mutex::new(()),
        })
    }

    #[cfg(not(unix))]
    fn open(_path: &Path, _ring_bytes: usize, _create: bool) -> io::Result<Ring> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the shmem transport requires a unix platform (mmap)",
        ))
    }

    fn head(&self) -> &AtomicU64 {
        unsafe { &*(self.ptr as *const AtomicU64) }
    }

    fn tail(&self) -> &AtomicU64 {
        unsafe { &*(self.ptr.add(64) as *const AtomicU64) }
    }

    fn data(&self) -> *mut u8 {
        unsafe { self.ptr.add(HEADER_BYTES) }
    }

    /// Copy `src` into the ring at logical offset `at`, wrapping.
    /// Caller must own `[at, at + src.len())` (producer discipline).
    fn write_at(&self, at: u64, src: &[u8]) {
        let pos = (at % self.capacity) as usize;
        let first = src.len().min(self.capacity as usize - pos);
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.data().add(pos), first);
            std::ptr::copy_nonoverlapping(
                src.as_ptr().add(first),
                self.data(),
                src.len() - first,
            );
        }
    }

    /// Copy `dst.len()` bytes out of the ring at logical offset `at`.
    fn read_at(&self, at: u64, dst: &mut [u8]) {
        let pos = (at % self.capacity) as usize;
        let first = dst.len().min(self.capacity as usize - pos);
        unsafe {
            std::ptr::copy_nonoverlapping(self.data().add(pos), dst.as_mut_ptr(), first);
            std::ptr::copy_nonoverlapping(
                self.data(),
                dst.as_mut_ptr().add(first),
                dst.len() - first,
            );
        }
    }

    /// Append one length-prefixed frame, spinning while the ring is
    /// full (the poller on the other side is always draining, so the
    /// wait is bounded by consumer speed, not application behavior).
    fn push_frame(&self, frame: &[u8]) {
        let need = 4 + frame.len() as u64;
        assert!(
            need <= self.capacity,
            "a {} byte frame exceeds the {} byte shm ring; raise {}",
            frame.len(),
            self.capacity,
            crate::config::SHM_RING_BYTES_ENV,
        );
        let _guard = self.write_lock.lock().unwrap();
        let tail = self.tail().load(Ordering::Relaxed);
        let mut spins = 0u32;
        while self.capacity - (tail - self.head().load(Ordering::Acquire)) < need {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        self.write_at(tail, &(frame.len() as u32).to_le_bytes());
        self.write_at(tail + 4, frame);
        // One release store per record: a consumer that sees the new
        // tail sees the whole frame.
        self.tail().store(tail + need, Ordering::Release);
    }

    /// Take the next frame if one is complete. Consumer side only.
    fn pop_frame(&self) -> Option<Vec<u8>> {
        let head = self.head().load(Ordering::Relaxed);
        let tail = self.tail().load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        debug_assert!(tail - head >= 4, "partial record published");
        let mut len_bytes = [0u8; 4];
        self.read_at(head, &mut len_bytes);
        let len = u32::from_le_bytes(len_bytes) as usize;
        debug_assert!(tail - head >= 4 + len as u64, "partial record published");
        let mut frame = vec![0u8; len];
        self.read_at(head + 4, &mut frame);
        self.head().store(head + 4 + len as u64, Ordering::Release);
        Some(frame)
    }
}

fn ring_path(dir: &Path, src: usize, dst: usize) -> PathBuf {
    dir.join(format!("ring-{src}-{dst}"))
}

/// Process-unique suffix for loopback ring directories.
fn unique_suffix() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!(
        "{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

/// The shared-memory transport. See the module docs for the two modes.
pub struct ShmemTransport {
    /// `(src_world, dst_world) -> ring`, producers keyed by sender.
    rings: HashMap<(usize, usize), Arc<Ring>>,
    /// Rings this side consumes, in deterministic sweep order.
    drain: Vec<Arc<Ring>>,
    /// World ranks hosted by this process (all of them in loopback).
    local: Vec<usize>,
    dir: PathBuf,
    /// Loopback owns the directory and deletes it on shutdown.
    owns_dir: bool,
    stop: Arc<AtomicBool>,
    poller: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Process-local slab of envelopes travelling zero-copy: the ring
    /// carries only a token, the poller claims the envelope from here.
    /// Shared with the poller thread.
    handoff: Arc<Mutex<HashMap<u64, Envelope>>>,
    /// Token mint for the slab.
    handoff_seq: AtomicU64,
    /// Smallest payload (bytes) taking the handoff path; `usize::MAX`
    /// disables it (per-process mode, where no cross-rank destination is
    /// ever in-process).
    handoff_min: usize,
}

impl ShmemTransport {
    /// Build a loopback transport: every rank is a thread of this
    /// process, rings live in a fresh private directory, and one poller
    /// drains them all into the shared registry. Wire-safe payloads of
    /// `handoff_min` bytes or more move zero-copy through the handoff
    /// slab (pass `usize::MAX` to force everything through
    /// serialization).
    pub fn loopback(
        num_ranks: usize,
        ring_bytes: usize,
        handoff_min: usize,
    ) -> io::Result<ShmemTransport> {
        let dir = std::env::temp_dir().join(format!("beatnik-shm-{}", unique_suffix()));
        std::fs::create_dir_all(&dir)?;
        let mut me = ShmemTransport {
            rings: HashMap::new(),
            drain: Vec::new(),
            local: (0..num_ranks).collect(),
            dir,
            owns_dir: true,
            stop: Arc::new(AtomicBool::new(false)),
            poller: Mutex::new(None),
            handoff: Arc::new(Mutex::new(HashMap::new())),
            handoff_seq: AtomicU64::new(0),
            handoff_min,
        };
        for src in 0..num_ranks {
            for dst in 0..num_ranks {
                if src == dst {
                    continue;
                }
                let ring = Arc::new(Ring::open(&ring_path(&me.dir, src, dst), ring_bytes, true)?);
                me.drain.push(Arc::clone(&ring));
                me.rings.insert((src, dst), ring);
            }
        }
        Ok(me)
    }

    /// Join an existing ring directory as world rank `my_rank` (one
    /// process per rank; the [`crate::proc`] parent creates the files
    /// by building its own transport first).
    pub fn for_process(
        dir: &Path,
        my_rank: usize,
        num_ranks: usize,
        ring_bytes: usize,
    ) -> io::Result<ShmemTransport> {
        let mut me = ShmemTransport {
            rings: HashMap::new(),
            drain: Vec::new(),
            local: vec![my_rank],
            dir: dir.to_path_buf(),
            owns_dir: false,
            stop: Arc::new(AtomicBool::new(false)),
            poller: Mutex::new(None),
            handoff: Arc::new(Mutex::new(HashMap::new())),
            handoff_seq: AtomicU64::new(0),
            // Every cross-rank destination is another process: a pointer
            // would be meaningless there, so the slab never engages.
            handoff_min: usize::MAX,
        };
        for peer in 0..num_ranks {
            if peer == my_rank {
                continue;
            }
            let out = Arc::new(Ring::open(
                &ring_path(dir, my_rank, peer),
                ring_bytes,
                false,
            )?);
            me.rings.insert((my_rank, peer), out);
            let inc = Arc::new(Ring::open(
                &ring_path(dir, peer, my_rank),
                ring_bytes,
                false,
            )?);
            me.drain.push(Arc::clone(&inc));
            me.rings.insert((peer, my_rank), inc);
        }
        Ok(me)
    }

    /// The ring directory (the proc launcher passes it to children).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Create a fresh world directory with one zero-initialized ring
    /// file per ordered rank pair. The [`crate::proc`] parent calls this
    /// before spawning children, then joins the world itself via
    /// [`ShmemTransport::for_process`].
    pub fn create_world_dir(num_ranks: usize, ring_bytes: usize) -> io::Result<PathBuf> {
        let dir = std::env::temp_dir().join(format!("beatnik-proc-{}", unique_suffix()));
        std::fs::create_dir_all(&dir)?;
        for src in 0..num_ranks {
            for dst in 0..num_ranks {
                if src != dst {
                    let file = std::fs::File::create(ring_path(&dir, src, dst))?;
                    file.set_len(ring_bytes as u64)?;
                }
            }
        }
        Ok(dir)
    }
}

impl Transport for ShmemTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Shmem
    }

    fn attach(&self, registry: &Arc<Registry>) {
        let registry = Arc::clone(registry);
        let rings: Vec<Arc<Ring>> = self.drain.clone();
        let stop = Arc::clone(&self.stop);
        let handoff = Arc::clone(&self.handoff);
        let handle = std::thread::Builder::new()
            .name("beatnik-shm-poller".into())
            .spawn(move || {
                let mut idle_sweeps = 0u32;
                loop {
                    let mut drained = false;
                    for ring in &rings {
                        while let Some(frame) = ring.pop_frame() {
                            drained = true;
                            match wire::decode(&frame) {
                                // Handoff tokens are claimed here, where
                                // the sender's slab is in reach; the
                                // stashed envelope moves by pointer into
                                // the destination mailbox, in ring order.
                                Ok(wire::Frame::Handoff {
                                    comm,
                                    dst_local,
                                    token,
                                }) => {
                                    let env = handoff
                                        .lock()
                                        .unwrap()
                                        .remove(&token)
                                        .unwrap_or_else(|| {
                                            panic!("handoff token {token} with no stashed envelope")
                                        });
                                    registry.mailbox(comm, dst_local).push(env);
                                }
                                Ok(f) => wire::apply(f, &registry),
                                Err(e) => panic!("corrupt shm frame: {e}"),
                            }
                        }
                    }
                    if drained {
                        idle_sweeps = 0;
                        continue;
                    }
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    idle_sweeps += 1;
                    if idle_sweeps < 256 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_micros(100));
                    }
                }
            })
            .expect("spawning the shm poller thread");
        *self.poller.lock().unwrap() = Some(handle);
    }

    fn deliver(&self, registry: &Registry, route: Route, env: Envelope) {
        if route.src_world == route.dst_world {
            // Self-sends never cross the wire (and may carry types with
            // drop glue, which the wire would rightly refuse).
            registry.mailbox(route.comm, route.dst_local).push(env);
            return;
        }
        let ring = self
            .rings
            .get(&(route.src_world, route.dst_world))
            .unwrap_or_else(|| {
                panic!(
                    "no shm ring for {} -> {}",
                    route.src_world, route.dst_world
                )
            });
        // Zero-copy handoff: when the destination mailbox lives in this
        // process and the payload is large and wire-safe, stash the
        // envelope and push only a token through the ring. The token
        // flows through the same FIFO ring as serialized frames, so
        // non-overtaking order is preserved; droppy payloads (no wire
        // view) keep today's loud serialization failure rather than
        // silently working only above the threshold.
        if env.bytes >= self.handoff_min
            && env.wire_view().is_some()
            && self.local.contains(&route.dst_world)
        {
            let token = self.handoff_seq.fetch_add(1, Ordering::Relaxed);
            self.handoff.lock().unwrap().insert(token, env);
            ring.push_frame(&wire::encode_handoff(route.comm, route.dst_local, token));
            return;
        }
        ring.push_frame(&wire::encode_data(route.comm, route.dst_local, &env));
    }

    fn pointer_handoff(&self, dst_world: usize) -> bool {
        // In-process destinations get the slab (large messages) or a
        // direct push (self-sends); cross-process ones need the wire.
        self.local.contains(&dst_world)
    }

    fn publish_ctrl(&self, ctrl: CtrlMsg) {
        // Loopback worlds share the ledger; only per-process mode needs
        // to broadcast (its only local rank is `local[0]`).
        if self.local.len() != 1 {
            return;
        }
        let me = self.local[0];
        let frame = wire::encode_ctrl(ctrl);
        for ((src, _dst), ring) in &self.rings {
            if *src == me {
                ring.push_frame(&frame);
            }
        }
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.poller.lock().unwrap().take() {
            let _ = handle.join();
        }
        if self.owns_dir {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    fn test_ring(bytes: usize) -> (Ring, PathBuf) {
        let path = std::env::temp_dir().join(format!("beatnik-ring-test-{}", unique_suffix()));
        let ring = Ring::open(&path, bytes, true).unwrap();
        (ring, path)
    }

    #[test]
    fn ring_roundtrips_frames_in_order() {
        let (ring, path) = test_ring(4096);
        assert!(ring.pop_frame().is_none());
        ring.push_frame(b"alpha");
        ring.push_frame(b"bravo-longer");
        assert_eq!(ring.pop_frame().unwrap(), b"alpha");
        assert_eq!(ring.pop_frame().unwrap(), b"bravo-longer");
        assert!(ring.pop_frame().is_none());
        drop(ring);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ring_wraps_and_survives_pressure() {
        let (ring, path) = test_ring(4096);
        // Capacity is 4096 - 128; frames of 1000 bytes force wraps and
        // back-pressure interleaving across many laps.
        let producer_ring = Arc::new(ring);
        let consumer_ring = Arc::clone(&producer_ring);
        let producer = std::thread::spawn(move || {
            for i in 0..500u32 {
                let frame = vec![(i % 251) as u8; 1000];
                producer_ring.push_frame(&frame);
            }
        });
        let mut seen = 0u32;
        while seen < 500 {
            if let Some(frame) = consumer_ring.pop_frame() {
                assert_eq!(frame.len(), 1000);
                assert!(frame.iter().all(|&b| b == (seen % 251) as u8));
                seen += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        drop(consumer_ring);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_frames_panic_with_the_env_hint() {
        let (ring, _path) = test_ring(4096);
        ring.push_frame(&vec![0u8; 8192]);
    }

    #[test]
    fn handoff_moves_large_envelopes_without_serialization_in_ring_order() {
        let registry = Arc::new(Registry::new());
        // handoff_min 64: the 8-byte message serializes, the big ones
        // ride the slab. The 8 KiB payload exceeds the 4 KiB ring, so it
        // can only arrive via handoff — reaching the mailbox at all
        // proves no serialized frame carried it.
        let t = ShmemTransport::loopback(2, 4096, 64).unwrap();
        t.attach(&registry);
        let r = Route {
            comm: 0,
            dst_local: 1,
            src_world: 0,
            dst_world: 1,
        };
        t.deliver(&registry, r, Envelope::new(0, 1, vec![7u64]));
        let big: Vec<u64> = (0..1024).collect();
        t.deliver(&registry, r, Envelope::new(0, 2, big.clone()));
        t.deliver(&registry, r, Envelope::new(0, 3, vec![9u64]));
        let mb = registry.mailbox(0, 1);
        let timeout = Duration::from_secs(5);
        // Wildcard receives absorb strictly in arrival order: the
        // handoff token must not have overtaken frame 1 nor been
        // overtaken by frame 3.
        let a = mb.recv_matching_timeout(1, usize::MAX, u64::MAX, timeout).unwrap();
        assert_eq!(a.tag, 1);
        let b = mb.recv_matching_timeout(1, usize::MAX, u64::MAX, timeout).unwrap();
        assert_eq!(b.tag, 2);
        assert_eq!(b.into_data::<u64>(), big);
        let c = mb.recv_matching_timeout(1, usize::MAX, u64::MAX, timeout).unwrap();
        assert_eq!(c.tag, 3);
        assert!(t.handoff.lock().unwrap().is_empty(), "slab must drain");
        t.shutdown();
    }

    #[test]
    fn handoff_capability_tracks_local_ranks() {
        let t = ShmemTransport::loopback(3, 4096, 64).unwrap();
        assert!(t.pointer_handoff(0));
        assert!(t.pointer_handoff(2));
        t.shutdown();
    }
}
