//! Randomized-property tests on the core invariants of the numerical
//! substrates: FFT algebra, neighbor-search equivalence, layout
//! partitioning, collective/serial agreement, and kernel antisymmetry.
//! Cases come from the workspace's deterministic PRNG — reproducible
//! and hermetic.

use beatnik_comm::World;
use beatnik_core::br::kernel::br_pair_velocity;
use beatnik_dfft::{Dist, Rect};
use beatnik_fft::{dft::dft_naive, Complex, Fft};
use beatnik_prng::Rng;
use beatnik_spatial::neighbors::{brute_force_neighbors, Backend, NeighborList};

fn complex_signal(rng: &mut Rng, max_len: usize) -> Vec<Complex> {
    let n = rng.gen_index(1..max_len);
    (0..n)
        .map(|_| Complex::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0)))
        .collect()
}

fn cloud(rng: &mut Rng, max_n: usize) -> Vec<[f64; 3]> {
    let n = rng.gen_index(0..max_n);
    (0..n)
        .map(|_| {
            [
                rng.gen_range(-5.0..5.0),
                rng.gen_range(-5.0..5.0),
                rng.gen_range(-1.0..1.0),
            ]
        })
        .collect()
}

/// forward→inverse is the identity for every length (radix-2 and
/// Bluestein paths).
#[test]
fn fft_roundtrip_is_identity() {
    let mut rng = Rng::seed_from_u64(0x177_0001);
    for _ in 0..64 {
        let x = complex_signal(&mut rng, 200);
        let plan = Fft::new(x.len());
        let mut buf = x.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-8 * (1.0 + b.abs()), "len {}", x.len());
        }
    }
}

/// The fast transform agrees with the O(n²) DFT.
#[test]
fn fft_matches_naive_dft() {
    let mut rng = Rng::seed_from_u64(0x177_0002);
    for _ in 0..64 {
        let x = complex_signal(&mut rng, 64);
        let plan = Fft::new(x.len());
        let mut fast = x.clone();
        plan.forward(&mut fast);
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-6 * (1.0 + b.abs()), "len {}", x.len());
        }
    }
}

/// Parseval: energy is conserved up to the 1/n normalization.
#[test]
fn fft_parseval() {
    let mut rng = Rng::seed_from_u64(0x177_0003);
    for _ in 0..64 {
        let x = complex_signal(&mut rng, 128);
        let n = x.len() as f64;
        let plan = Fft::new(x.len());
        let mut spec = x.clone();
        plan.forward(&mut spec);
        let e_time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        assert!((e_time - e_freq).abs() < 1e-6 * (1.0 + e_time));
    }
}

/// Grid and k-d tree backends both equal brute force exactly
/// (identical CSR lists after per-target sorting).
#[test]
fn neighbor_backends_equal_brute_force() {
    let mut rng = Rng::seed_from_u64(0x177_0004);
    for _ in 0..48 {
        let targets = cloud(&mut rng, 40);
        let sources = cloud(&mut rng, 60);
        let radius = rng.gen_range(0.1..3.0);
        let want = brute_force_neighbors(&targets, &sources, radius);
        for backend in [Backend::Grid, Backend::KdTree] {
            let got = NeighborList::build(&targets, &sources, radius, backend);
            assert_eq!(got, want, "backend {backend:?}");
        }
    }
}

/// Balanced distributions partition exactly with near-equal parts.
#[test]
fn dist_partitions_perfectly() {
    let mut rng = Rng::seed_from_u64(0x177_0005);
    for _ in 0..48 {
        let n = rng.gen_index(0..10_000);
        let parts = rng.gen_index(1..64);
        let d = Dist::new(n, parts);
        let mut covered = 0usize;
        for i in 0..parts {
            let r = d.range(i);
            assert_eq!(r.start, covered);
            covered = r.end;
            assert!(r.len() >= n / parts);
            assert!(r.len() <= n / parts + 1);
        }
        assert_eq!(covered, n, "n {n}, parts {parts}");
    }
}

/// Rectangle intersection is commutative and contained in both.
#[test]
fn rect_intersection_properties() {
    let mut rng = Rng::seed_from_u64(0x177_0006);
    for _ in 0..48 {
        let mut side = || {
            let a = rng.gen_index(0..50);
            let b = rng.gen_index(0..50);
            a.min(b)..a.max(b)
        };
        let r1 = Rect::new(side(), side());
        let r2 = Rect::new(side(), side());
        let i12 = r1.intersect(&r2);
        let i21 = r2.intersect(&r1);
        assert_eq!(i12.area(), i21.area());
        assert!(i12.area() <= r1.area().min(r2.area()));
    }
}

/// The Birkhoff–Rott pair kernel is antisymmetric under exchanging
/// two points carrying equal strengths.
#[test]
fn br_kernel_antisymmetry() {
    let mut rng = Rng::seed_from_u64(0x177_0007);
    for _ in 0..48 {
        let mut v3 = |lo: f64, hi: f64| {
            [
                rng.gen_range(lo..hi),
                rng.gen_range(lo..hi),
                rng.gen_range(lo..hi),
            ]
        };
        let p = v3(-3.0, 3.0);
        let q = v3(-3.0, 3.0);
        let s = v3(-2.0, 2.0);
        let eps = rng.gen_range(0.01..1.0);
        let upq = br_pair_velocity(p, q, s, eps * eps);
        let uqp = br_pair_velocity(q, p, s, eps * eps);
        for k in 0..3 {
            assert!((upq[k] + uqp[k]).abs() < 1e-12 * (1.0 + upq[k].abs()));
        }
    }
}

/// allreduce(sum) equals the serial fold for random per-rank vectors.
/// Threaded cases are costlier; keep the case count low.
#[test]
fn allreduce_equals_serial_fold() {
    let mut rng = Rng::seed_from_u64(0x177_0008);
    for _ in 0..12 {
        let values: Vec<f64> = (0..4).map(|_| rng.gen_range(-1e6..1e6)).collect();
        let expect: f64 = values.iter().sum();
        let v2 = values.clone();
        let results = World::builder(4).run(move |comm| comm.allreduce_sum(v2[comm.rank()]));
        for r in results {
            assert!((r - expect).abs() < 1e-6 * (1.0 + expect.abs()));
        }
    }
}

/// alltoall delivers exactly the transpose of what was sent.
#[test]
fn alltoall_is_a_transpose() {
    let mut rng = Rng::seed_from_u64(0x177_0009);
    for _ in 0..12 {
        let seed = rng.next_u64() % 1_000_000;
        let results = World::builder(3).run(move |comm| {
            let me = comm.rank() as u64;
            let send: Vec<u64> = (0..3).map(|d| seed ^ (me * 10 + d as u64)).collect();
            comm.alltoall(&send)
        });
        for (r, per_rank) in results.into_iter().enumerate() {
            for (src, &val) in per_rank.iter().enumerate() {
                assert_eq!(val, seed ^ (src as u64 * 10 + r as u64));
            }
        }
    }
}
