//! Reduction operators for reduce/allreduce collectives.
//!
//! Operators must be associative and commutative: the tree-based reduction
//! algorithms combine partial results in rank-topology order, not program
//! order. (Floating-point sums are therefore reproducible for a fixed rank
//! count but may differ in the last bits between rank counts — exactly as
//! with MPI.)

/// An associative, commutative combining operation on `T`.
pub trait ReduceOp<T>: Sync {
    /// Combine two values.
    fn combine(&self, a: &T, b: &T) -> T;
}

/// Addition.
pub struct SumOp;
/// Multiplication.
pub struct ProdOp;
/// Minimum (for floats: NaN-propagating via `f64::min` semantics).
pub struct MinOp;
/// Maximum.
pub struct MaxOp;

macro_rules! impl_arith_ops {
    ($($t:ty),*) => {$(
        impl ReduceOp<$t> for SumOp {
            #[inline]
            fn combine(&self, a: &$t, b: &$t) -> $t { a + b }
        }
        impl ReduceOp<$t> for ProdOp {
            #[inline]
            fn combine(&self, a: &$t, b: &$t) -> $t { a * b }
        }
    )*};
}

macro_rules! impl_ord_ops {
    ($($t:ty),*) => {$(
        impl ReduceOp<$t> for MinOp {
            #[inline]
            fn combine(&self, a: &$t, b: &$t) -> $t { *a.min(b) }
        }
        impl ReduceOp<$t> for MaxOp {
            #[inline]
            fn combine(&self, a: &$t, b: &$t) -> $t { *a.max(b) }
        }
    )*};
}

macro_rules! impl_float_minmax {
    ($($t:ty),*) => {$(
        impl ReduceOp<$t> for MinOp {
            #[inline]
            fn combine(&self, a: &$t, b: &$t) -> $t { a.min(*b) }
        }
        impl ReduceOp<$t> for MaxOp {
            #[inline]
            fn combine(&self, a: &$t, b: &$t) -> $t { a.max(*b) }
        }
    )*};
}

impl_arith_ops!(f32, f64, i32, i64, u32, u64, usize);
impl_ord_ops!(i32, i64, u32, u64, usize);
impl_float_minmax!(f32, f64);

/// Adapter turning any closure into a [`ReduceOp`]; handy for custom
/// reductions (e.g. argmax pairs) without a new type.
pub struct FnOp<F>(pub F);

impl<T, F: Fn(&T, &T) -> T + Sync> ReduceOp<T> for FnOp<F> {
    #[inline]
    fn combine(&self, a: &T, b: &T) -> T {
        (self.0)(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_ops() {
        assert_eq!(SumOp.combine(&2.0f64, &3.5), 5.5);
        assert_eq!(ProdOp.combine(&4u64, &5), 20);
    }

    #[test]
    fn ordering_ops_ints_and_floats() {
        assert_eq!(MinOp.combine(&3i64, &-1), -1);
        assert_eq!(MaxOp.combine(&3usize, &7), 7);
        assert_eq!(MinOp.combine(&2.5f64, &2.0), 2.0);
        assert_eq!(MaxOp.combine(&2.5f32, &2.0), 2.5);
    }

    #[test]
    fn closure_op_argmax() {
        let op = FnOp(|a: &(f64, usize), b: &(f64, usize)| if a.0 >= b.0 { *a } else { *b });
        assert_eq!(op.combine(&(1.0, 0), &(3.0, 2)), (3.0, 2));
    }
}
