//! The bench regression gate: diff a freshly generated `BENCH_comm.json`
//! / `BENCH_fault.json` / `BENCH_serve.json` / `BENCH_compute.json`
//! against the committed baselines and fail on regressions.
//!
//! Thresholds are per-metric-class, not global:
//!
//! * **time-like** metrics (`ns_per_op`, `ns`) are noisy on shared CI
//!   hosts, so the ceiling is `max(baseline * time_ratio, baseline +
//!   floor)`. The additive floor matters for metrics whose baseline is
//!   near zero (a `recovery_time` of 0.7 ms would otherwise flag on
//!   scheduler jitter alone); the fault bench's single-shot timings get
//!   a wider floor than the comm bench's per-op averages.
//! * **deterministic** metrics (`bytes_copied_per_op`) are exact
//!   properties of the algorithm, so the ceiling is tight:
//!   `max(baseline * bytes_ratio, baseline + bytes_floor)`.
//!
//! A baseline row with no matching fresh row is itself a regression —
//! silently dropping a bench case must not pass the gate.

use beatnik_json::Value;
use std::collections::BTreeMap;

/// Per-metric-class ceilings. See the module docs for the rationale.
#[derive(Debug, Clone, Copy)]
pub struct GatePolicy {
    /// Multiplicative ceiling for time-like metrics (`ns_per_op`, `ns`).
    pub time_ratio: f64,
    /// Additive floor (ns) for time-like metrics; absorbs jitter on
    /// near-zero baselines.
    pub time_floor_ns: f64,
    /// Additive floor (ns) for the fault-bench metrics, which are
    /// single-shot run timings, not per-op averages: detection latency
    /// legitimately lands anywhere inside the detector's poll slice
    /// (sub-ms to ~100 ms) and recovery time swings with where the kill
    /// falls relative to a checkpoint boundary.
    pub fault_floor_ns: f64,
    /// Additive floor (ns) for the serve-bench metrics. These are
    /// whole-service latencies (queue wait, p99 job latency) over a
    /// few hundred jobs on a shared pool — one slow scheduling round
    /// on an oversubscribed CI host moves the tail by whole seconds.
    pub serve_floor_ns: f64,
    /// Additive floor (ns per element) for the compute-kernel metrics.
    /// These are tight per-element numbers (fractions of a nanosecond
    /// to a few nanoseconds), so the floor is correspondingly small —
    /// it absorbs frequency scaling and cache-state jitter without
    /// letting a kernel quietly fall back to a slower path.
    pub compute_floor_ns: f64,
    /// Multiplicative ceiling for deterministic byte counts.
    pub bytes_ratio: f64,
    /// Additive floor (bytes) for deterministic byte counts; absorbs
    /// zero baselines.
    pub bytes_floor: f64,
}

impl Default for GatePolicy {
    fn default() -> Self {
        GatePolicy {
            time_ratio: 2.0,
            time_floor_ns: 1.0e7,
            fault_floor_ns: 1.5e8,
            serve_floor_ns: 2.0e9,
            compute_floor_ns: 5.0,
            bytes_ratio: 1.10,
            bytes_floor: 64.0,
        }
    }
}

/// One gated comparison: a baseline value, the matching fresh value (if
/// any), and the verdict.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Human-readable join key, e.g. `alltoall/bruck r=16 b=64`.
    pub key: String,
    /// The compared field (`ns_per_op`, `bytes_copied_per_op`, `ns`).
    pub metric: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value; `None` when the bench case disappeared.
    pub fresh: Option<f64>,
    /// The ceiling the fresh value must stay under.
    pub limit: f64,
    /// Verdict.
    pub pass: bool,
}

/// The gate's verdict over one baseline/fresh document pair.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// One row per `(baseline row, metric)` comparison.
    pub rows: Vec<GateRow>,
}

impl GateReport {
    /// Number of failed comparisons.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| !r.pass).count()
    }

    /// Fixed-width report table, failures marked `FAIL`.
    pub fn text(&self) -> String {
        let mut out = String::new();
        let keyw = self
            .rows
            .iter()
            .map(|r| r.key.len())
            .max()
            .unwrap_or(4)
            .max(4);
        out.push_str(&format!(
            "{:<keyw$}  {:<19}  {:>14}  {:>14}  {:>14}  verdict\n",
            "case", "metric", "baseline", "fresh", "limit"
        ));
        for r in &self.rows {
            let fresh = match r.fresh {
                Some(v) => format!("{v:.1}"),
                None => "missing".to_string(),
            };
            out.push_str(&format!(
                "{:<keyw$}  {:<19}  {:>14.1}  {:>14}  {:>14.1}  {}\n",
                r.key,
                r.metric,
                r.baseline,
                fresh,
                r.limit,
                if r.pass { "ok" } else { "FAIL" }
            ));
        }
        out
    }
}

fn bench_rows(doc: &Value) -> Result<&[Value], String> {
    match doc.get("benches") {
        Some(Value::Array(rows)) => Ok(rows),
        _ => Err("document has no \"benches\" array".to_string()),
    }
}

fn field_f64(row: &Value, key: &str) -> Result<f64, String> {
    row.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("bench row missing numeric field {key:?}"))
}

fn field_str<'v>(row: &'v Value, key: &str) -> Result<&'v str, String> {
    row.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("bench row missing string field {key:?}"))
}

/// The row's transport backend. Baselines (and fresh files) written
/// before the transport was pluggable carry no field — every row was
/// implicitly the thread backend, so that is the fallback.
fn transport_of(row: &Value) -> &str {
    row.get("transport").and_then(Value::as_str).unwrap_or("thread")
}

fn check(
    report: &mut GateReport,
    key: &str,
    metric: &str,
    baseline: f64,
    fresh: Option<f64>,
    ratio: f64,
    floor: f64,
) {
    let limit = (baseline * ratio).max(baseline + floor);
    let pass = matches!(fresh, Some(v) if v <= limit);
    report.rows.push(GateRow {
        key: key.to_string(),
        metric: metric.to_string(),
        baseline,
        fresh,
        limit,
        pass,
    });
}

/// Gate a fresh `BENCH_comm.json` against its baseline. Rows join on
/// `(op, algo, transport, ranks, bytes)` — a missing `transport` field
/// (pre-pluggable baselines) reads as `thread`; `ns_per_op` is
/// time-like, while `bytes_copied_per_op` is deterministic and held
/// tight.
pub fn gate_comm(baseline: &Value, fresh: &Value, policy: &GatePolicy) -> Result<GateReport, String> {
    let mut fresh_by_key = BTreeMap::new();
    for row in bench_rows(fresh)? {
        let key = (
            field_str(row, "op")?.to_string(),
            field_str(row, "algo")?.to_string(),
            transport_of(row).to_string(),
            field_f64(row, "ranks")? as u64,
            field_f64(row, "bytes")? as u64,
        );
        fresh_by_key.insert(key, row);
    }
    let mut report = GateReport::default();
    for row in bench_rows(baseline)? {
        let op = field_str(row, "op")?;
        let algo = field_str(row, "algo")?;
        let transport = transport_of(row);
        let ranks = field_f64(row, "ranks")? as u64;
        let bytes = field_f64(row, "bytes")? as u64;
        let key = format!("{op}/{algo}@{transport} r={ranks} b={bytes}");
        let hit = fresh_by_key
            .get(&(
                op.to_string(),
                algo.to_string(),
                transport.to_string(),
                ranks,
                bytes,
            ))
            .copied();
        let fresh_ns = hit.map(|r| field_f64(r, "ns_per_op")).transpose()?;
        check(
            &mut report,
            &key,
            "ns_per_op",
            field_f64(row, "ns_per_op")?,
            fresh_ns,
            policy.time_ratio,
            policy.time_floor_ns,
        );
        let fresh_bytes = hit.map(|r| field_f64(r, "bytes_copied_per_op")).transpose()?;
        check(
            &mut report,
            &key,
            "bytes_copied_per_op",
            field_f64(row, "bytes_copied_per_op")?,
            fresh_bytes,
            policy.bytes_ratio,
            policy.bytes_floor,
        );
    }
    Ok(report)
}

/// Gate a fresh `BENCH_fault.json` against its baseline. Rows join on
/// `(metric, ranks, checkpoint_every)`; every `ns` value is time-like.
pub fn gate_fault(
    baseline: &Value,
    fresh: &Value,
    policy: &GatePolicy,
) -> Result<GateReport, String> {
    let mut fresh_by_key = BTreeMap::new();
    for row in bench_rows(fresh)? {
        let key = (
            field_str(row, "metric")?.to_string(),
            field_f64(row, "ranks")? as u64,
            field_f64(row, "checkpoint_every")? as u64,
        );
        fresh_by_key.insert(key, row);
    }
    let mut report = GateReport::default();
    for row in bench_rows(baseline)? {
        let metric = field_str(row, "metric")?;
        let ranks = field_f64(row, "ranks")? as u64;
        let every = field_f64(row, "checkpoint_every")? as u64;
        let key = format!("{metric} r={ranks} ckpt={every}");
        let fresh_ns = fresh_by_key
            .get(&(metric.to_string(), ranks, every))
            .map(|r| field_f64(r, "ns"))
            .transpose()?;
        check(
            &mut report,
            &key,
            "ns",
            field_f64(row, "ns")?,
            fresh_ns,
            policy.time_ratio,
            policy.fault_floor_ns,
        );
    }
    Ok(report)
}

/// Gate a fresh `BENCH_serve.json` against its baseline. Rows join on
/// `(metric, jobs, pool_ranks)`; every `ns` value is time-like and
/// single-shot, so the wide serve floor applies.
pub fn gate_serve(
    baseline: &Value,
    fresh: &Value,
    policy: &GatePolicy,
) -> Result<GateReport, String> {
    let mut fresh_by_key = BTreeMap::new();
    for row in bench_rows(fresh)? {
        let key = (
            field_str(row, "metric")?.to_string(),
            field_f64(row, "jobs")? as u64,
            field_f64(row, "pool_ranks")? as u64,
        );
        fresh_by_key.insert(key, row);
    }
    let mut report = GateReport::default();
    for row in bench_rows(baseline)? {
        let metric = field_str(row, "metric")?;
        let jobs = field_f64(row, "jobs")? as u64;
        let pool = field_f64(row, "pool_ranks")? as u64;
        let key = format!("{metric} jobs={jobs} pool={pool}");
        let fresh_ns = fresh_by_key
            .get(&(metric.to_string(), jobs, pool))
            .map(|r| field_f64(r, "ns"))
            .transpose()?;
        check(
            &mut report,
            &key,
            "ns",
            field_f64(row, "ns")?,
            fresh_ns,
            policy.time_ratio,
            policy.serve_floor_ns,
        );
    }
    Ok(report)
}

/// Gate a fresh `BENCH_compute.json` against its baseline. Rows join on
/// `(kernel, variant, n)`; `ns_per_elem` is time-like with the tight
/// compute floor (these are single-node kernel timings, not
/// communication). Informational fields like `gbps` are not gated —
/// throughput is the reciprocal view of the gated time.
pub fn gate_compute(
    baseline: &Value,
    fresh: &Value,
    policy: &GatePolicy,
) -> Result<GateReport, String> {
    let mut fresh_by_key = BTreeMap::new();
    for row in bench_rows(fresh)? {
        let key = (
            field_str(row, "kernel")?.to_string(),
            field_str(row, "variant")?.to_string(),
            field_f64(row, "n")? as u64,
        );
        fresh_by_key.insert(key, row);
    }
    let mut report = GateReport::default();
    for row in bench_rows(baseline)? {
        let kernel = field_str(row, "kernel")?;
        let variant = field_str(row, "variant")?;
        let n = field_f64(row, "n")? as u64;
        let key = format!("{kernel}/{variant} n={n}");
        let fresh_ns = fresh_by_key
            .get(&(kernel.to_string(), variant.to_string(), n))
            .map(|r| field_f64(r, "ns_per_elem"))
            .transpose()?;
        check(
            &mut report,
            &key,
            "ns_per_elem",
            field_f64(row, "ns_per_elem")?,
            fresh_ns,
            policy.time_ratio,
            policy.compute_floor_ns,
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm_doc(ns: f64, copied: f64) -> Value {
        beatnik_json::parse(&format!(
            r#"{{"benches": [{{"op": "alltoall", "algo": "bruck", "ranks": 16,
                 "bytes": 64, "size_bin": "≤64B", "ns_per_op": {ns},
                 "bytes_copied_per_op": {copied}}}]}}"#
        ))
        .unwrap()
    }

    fn fault_doc(metric: &str, ns: f64) -> Value {
        beatnik_json::parse(&format!(
            r#"{{"benches": [{{"metric": "{metric}", "ranks": 8,
                 "checkpoint_every": 1, "ns": {ns}}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let doc = comm_doc(1.0e6, 4096.0);
        let report = gate_comm(&doc, &doc, &GatePolicy::default()).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.regressions(), 0);

        let doc = fault_doc("recovery_time", 7.4e5);
        let report = gate_fault(&doc, &doc, &GatePolicy::default()).unwrap();
        assert_eq!(report.regressions(), 0);
    }

    #[test]
    fn synthetic_twenty_percent_regression_fails_a_tight_gate() {
        let baseline = comm_doc(1.0e9, 4096.0);
        let fresh = comm_doc(1.2e9, 4096.0);
        // A strict CI policy (15% ceiling, no jitter floor at this
        // magnitude) must flag a +20% time regression...
        let tight = GatePolicy {
            time_ratio: 1.15,
            time_floor_ns: 0.0,
            ..GatePolicy::default()
        };
        let report = gate_comm(&baseline, &fresh, &tight).unwrap();
        assert_eq!(report.regressions(), 1);
        assert!(report.text().contains("FAIL"), "{}", report.text());
        // ...while the default shared-host policy tolerates it.
        let report = gate_comm(&baseline, &fresh, &GatePolicy::default()).unwrap();
        assert_eq!(report.regressions(), 0);
    }

    #[test]
    fn deterministic_bytes_are_held_tight() {
        let baseline = comm_doc(1.0e6, 4096.0);
        // +20% copied bytes means the algorithm changed shape: always a
        // failure, even under the default policy.
        let fresh = comm_doc(1.0e6, 4915.2);
        let report = gate_comm(&baseline, &fresh, &GatePolicy::default()).unwrap();
        assert_eq!(report.regressions(), 1);
        let bad = report.rows.iter().find(|r| !r.pass).unwrap();
        assert_eq!(bad.metric, "bytes_copied_per_op");
    }

    #[test]
    fn missing_fresh_row_is_a_regression() {
        let baseline = comm_doc(1.0e6, 0.0);
        let fresh = beatnik_json::parse(r#"{"benches": []}"#).unwrap();
        let report = gate_comm(&baseline, &fresh, &GatePolicy::default()).unwrap();
        assert_eq!(report.regressions(), 2);
        assert!(report.text().contains("missing"));
    }

    #[test]
    fn additive_floor_absorbs_jitter_on_near_zero_baselines() {
        // recovery_time can legitimately be ~0 in the baseline, and
        // single-shot fault timings swing by tens of ms run to run; the
        // fault floor must absorb that.
        let baseline = fault_doc("recovery_time", 0.0);
        let fresh = fault_doc("recovery_time", 1.2e8);
        let report = gate_fault(&baseline, &fresh, &GatePolicy::default()).unwrap();
        assert_eq!(report.regressions(), 0);
        // But a genuinely slow recovery still fails.
        let fresh = fault_doc("recovery_time", 5.0e8);
        let report = gate_fault(&baseline, &fresh, &GatePolicy::default()).unwrap();
        assert_eq!(report.regressions(), 1);
    }

    #[test]
    fn transportless_baseline_joins_fresh_thread_rows() {
        // A pre-pluggable baseline row (no transport field) must match
        // a fresh row tagged "transport": "thread"...
        let baseline = comm_doc(1.0e6, 4096.0);
        let fresh = beatnik_json::parse(
            r#"{"benches": [{"op": "alltoall", "algo": "bruck", "transport": "thread",
                 "ranks": 16, "bytes": 64, "size_bin": "≤64B", "ns_per_op": 1.0e6,
                 "bytes_copied_per_op": 4096.0},
                {"op": "alltoall", "algo": "bruck", "transport": "tcp",
                 "ranks": 16, "bytes": 64, "size_bin": "≤64B", "ns_per_op": 9.9e9,
                 "bytes_copied_per_op": 4096.0}]}"#,
        )
        .unwrap();
        let report = gate_comm(&baseline, &fresh, &GatePolicy::default()).unwrap();
        assert_eq!(report.regressions(), 0, "{}", report.text());
        // ...and must NOT match a fresh row from another backend.
        let fresh_tcp_only = beatnik_json::parse(
            r#"{"benches": [{"op": "alltoall", "algo": "bruck", "transport": "tcp",
                 "ranks": 16, "bytes": 64, "size_bin": "≤64B", "ns_per_op": 1.0e6,
                 "bytes_copied_per_op": 4096.0}]}"#,
        )
        .unwrap();
        let report = gate_comm(&baseline, &fresh_tcp_only, &GatePolicy::default()).unwrap();
        assert_eq!(report.regressions(), 2);
        assert!(report.text().contains("@thread"));
    }

    #[test]
    fn serve_gate_joins_on_metric_jobs_pool() {
        let doc = |ns: f64| {
            beatnik_json::parse(&format!(
                r#"{{"benches": [{{"metric": "p99_latency", "jobs": 200,
                     "pool_ranks": 8, "ns": {ns}}}]}}"#
            ))
            .unwrap()
        };
        // The wide serve floor absorbs single-shot tail jitter...
        let report = gate_serve(&doc(1.0e9), &doc(2.5e9), &GatePolicy::default()).unwrap();
        assert_eq!(report.regressions(), 0, "{}", report.text());
        // ...but a service that got an order of magnitude slower fails.
        let report = gate_serve(&doc(1.0e9), &doc(1.2e10), &GatePolicy::default()).unwrap();
        assert_eq!(report.regressions(), 1);
        // A vanished bench case is a regression.
        let empty = beatnik_json::parse(r#"{"benches": []}"#).unwrap();
        let report = gate_serve(&doc(1.0e9), &empty, &GatePolicy::default()).unwrap();
        assert_eq!(report.regressions(), 1);
    }

    #[test]
    fn compute_gate_joins_on_kernel_variant_n() {
        let doc = |ns: f64| {
            beatnik_json::parse(&format!(
                r#"{{"benches": [{{"kernel": "fft_forward", "variant": "simd",
                     "n": 4096, "ns_per_elem": {ns}, "gbps": 12.0}}]}}"#
            ))
            .unwrap()
        };
        // The small compute floor absorbs cache/frequency jitter on a
        // sub-ns baseline...
        let report = gate_compute(&doc(0.8), &doc(3.1), &GatePolicy::default()).unwrap();
        assert_eq!(report.regressions(), 0, "{}", report.text());
        // ...but a kernel that fell back to a 10x slower path fails.
        let report = gate_compute(&doc(0.8), &doc(8.0), &GatePolicy::default()).unwrap();
        assert_eq!(report.regressions(), 1);
        // A vanished kernel row is a regression.
        let empty = beatnik_json::parse(r#"{"benches": []}"#).unwrap();
        let report = gate_compute(&doc(0.8), &empty, &GatePolicy::default()).unwrap();
        assert_eq!(report.regressions(), 1);
    }

    #[test]
    fn malformed_documents_error() {
        let ok = comm_doc(1.0, 0.0);
        let bad = beatnik_json::parse(r#"{"nope": 1}"#).unwrap();
        assert!(gate_comm(&bad, &ok, &GatePolicy::default()).is_err());
        let missing_field =
            beatnik_json::parse(r#"{"benches": [{"op": "alltoall"}]}"#).unwrap();
        assert!(gate_comm(&missing_field, &ok, &GatePolicy::default()).is_err());
    }
}
