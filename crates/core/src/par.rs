//! Intra-rank parallelism adapter.
//!
//! The BR kernels were written against `rayon::prelude::*`; this module
//! supplies the same call surface (`into_par_iter`, `par_iter`,
//! `par_chunks[_mut]`) as plain sequential iterators so the workspace
//! builds hermetically with no registry access. The choice is more than
//! a stopgap: ranks already run as one thread each (P-way parallel
//! across cores), so nested rayon pools oversubscribed the machine in
//! in-process worlds — sequential-within-rank matches the paper's
//! one-rank-per-GPU execution model where each rank owns its core.
//! Swapping a real work-stealing pool back in only requires changing
//! this module; kernel code keeps the rayon idiom.

/// Import this as `use crate::par::prelude::*;` wherever
/// `rayon::prelude::*` was used.
pub mod prelude {
    /// Owning "parallel" iteration: identical surface to rayon's trait,
    /// backed by the type's ordinary iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// Underlying iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterate (sequentially) with rayon's spelling.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Shared-slice helpers mirroring `rayon::slice::ParallelSlice`.
    pub trait ParallelSlice<T> {
        /// `slice.iter()` with rayon's spelling.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// `slice.chunks(n)` with rayon's spelling.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Mutable-slice helpers mirroring `rayon::slice::ParallelSliceMut`.
    pub trait ParallelSliceMut<T> {
        /// `slice.iter_mut()` with rayon's spelling.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// `slice.chunks_mut(n)` with rayon's spelling.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rayon_idioms_compile_and_agree_with_sequential() {
        let squares: Vec<usize> = (0..10usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[9], 81);

        let data = [1.0f64, 2.0, 3.0, 4.0];
        let sum: f64 = data.par_iter().sum();
        assert_eq!(sum, 10.0);

        let mut out = [0.0f64; 4];
        out.par_chunks_mut(2)
            .zip(data.par_chunks(2))
            .for_each(|(o, d)| {
                for (a, b) in o.iter_mut().zip(d) {
                    *a = 2.0 * b;
                }
            });
        assert_eq!(out, [2.0, 4.0, 6.0, 8.0]);

        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, vec![2, 3, 4]);
    }
}
