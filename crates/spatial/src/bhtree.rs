//! Barnes–Hut octree: hierarchical aggregation of vector-valued source
//! strengths for O(n log n) far-field evaluation.
//!
//! The paper lists fast-multipole-style far-field solvers as the key
//! future extension of Beatnik's Birkhoff–Rott solvers (§6). This tree is
//! the geometric substrate: each node aggregates its subtree's total
//! strength vector at the strength-weighted centroid; a traversal accepts
//! a node when it is small relative to its distance from the target
//! (`size / distance < θ`), otherwise descends.

use crate::aabb::Aabb;

/// Maximum points in a leaf before splitting.
const LEAF_CAP: usize = 16;

/// One tree node.
#[derive(Debug, Clone)]
pub struct BhNode {
    /// Bounding box of the node's points.
    pub bounds: Aabb,
    /// Aggregated strength vector (Σ of member strengths).
    pub strength: [f64; 3],
    /// Aggregation point: |strength|-weighted centroid of members
    /// (geometric centroid when all strengths vanish).
    pub center: [f64; 3],
    /// Number of points in the subtree.
    pub count: usize,
    /// Child node indices (empty for leaves).
    pub children: Vec<u32>,
    /// Point index range `start..end` into [`BhTree::point_order`].
    pub start: usize,
    /// End of the point index range.
    pub end: usize,
}

impl BhNode {
    /// Longest edge of the node's bounding box.
    pub fn size(&self) -> f64 {
        let e = self.bounds.extents();
        e[0].max(e[1]).max(e[2])
    }
}

/// A built Barnes–Hut tree over a fixed point/strength set.
pub struct BhTree {
    points: Vec<[f64; 3]>,
    strengths: Vec<[f64; 3]>,
    nodes: Vec<BhNode>,
    /// Permutation: `point_order[i]` is the original index of the i-th
    /// point in tree order (leaf ranges index into this).
    point_order: Vec<u32>,
    root: Option<u32>,
}

impl BhTree {
    /// Build over `points` with per-point `strengths`.
    pub fn build(points: Vec<[f64; 3]>, strengths: Vec<[f64; 3]>) -> Self {
        assert_eq!(points.len(), strengths.len(), "bhtree: length mismatch");
        let n = points.len();
        let mut tree = BhTree {
            points,
            strengths,
            nodes: Vec::new(),
            point_order: (0..n as u32).collect(),
            root: None,
        };
        if n > 0 {
            let root = tree.build_rec(0, n);
            tree.root = Some(root);
        }
        tree
    }

    fn aggregate(&self, start: usize, end: usize) -> ([f64; 3], [f64; 3], Aabb) {
        let mut strength = [0.0f64; 3];
        let mut weighted = [0.0f64; 3];
        let mut weight = 0.0f64;
        let mut geo = [0.0f64; 3];
        let mut bounds: Option<Aabb> = None;
        for &pi in &self.point_order[start..end] {
            let p = self.points[pi as usize];
            let s = self.strengths[pi as usize];
            let w = (s[0] * s[0] + s[1] * s[1] + s[2] * s[2]).sqrt();
            for k in 0..3 {
                strength[k] += s[k];
                weighted[k] += w * p[k];
                geo[k] += p[k];
            }
            weight += w;
            bounds = Some(match bounds {
                None => Aabb::new(p, p),
                Some(b) => Aabb::new(
                    [b.lo[0].min(p[0]), b.lo[1].min(p[1]), b.lo[2].min(p[2])],
                    [b.hi[0].max(p[0]), b.hi[1].max(p[1]), b.hi[2].max(p[2])],
                ),
            });
        }
        let count = (end - start) as f64;
        let center = if weight > 1e-300 {
            [weighted[0] / weight, weighted[1] / weight, weighted[2] / weight]
        } else {
            [geo[0] / count, geo[1] / count, geo[2] / count]
        };
        (strength, center, bounds.expect("aggregate of empty range"))
    }

    fn build_rec(&mut self, start: usize, end: usize) -> u32 {
        let (strength, center, bounds) = self.aggregate(start, end);
        let idx = self.nodes.len() as u32;
        self.nodes.push(BhNode {
            bounds,
            strength,
            center,
            count: end - start,
            children: Vec::new(),
            start,
            end,
        });
        if end - start > LEAF_CAP {
            // Split at the box midpoint of the longest axes (octant
            // split), skipping empty octants.
            let mid = [
                (bounds.lo[0] + bounds.hi[0]) / 2.0,
                (bounds.lo[1] + bounds.hi[1]) / 2.0,
                (bounds.lo[2] + bounds.hi[2]) / 2.0,
            ];
            let octant = |p: [f64; 3]| -> usize {
                (p[0] > mid[0]) as usize
                    + 2 * (p[1] > mid[1]) as usize
                    + 4 * (p[2] > mid[2]) as usize
            };
            // In-place bucket partition of point_order[start..end].
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); 8];
            for &pi in &self.point_order[start..end] {
                buckets[octant(self.points[pi as usize])].push(pi);
            }
            // Degenerate case (all coincident points): keep as leaf.
            if buckets.iter().filter(|b| !b.is_empty()).count() > 1 {
                let mut cursor = start;
                let mut ranges = Vec::new();
                for b in &buckets {
                    if !b.is_empty() {
                        self.point_order[cursor..cursor + b.len()].copy_from_slice(b);
                        ranges.push((cursor, cursor + b.len()));
                        cursor += b.len();
                    }
                }
                let children: Vec<u32> = ranges
                    .into_iter()
                    .map(|(s, e)| self.build_rec(s, e))
                    .collect();
                self.nodes[idx as usize].children = children;
            }
        }
        idx
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of tree nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Evaluate `Σ kernel(target, source)` with Barnes–Hut acceptance:
    /// a node with `size/dist < θ` contributes as a single pseudo-source
    /// (its aggregated strength at its centroid); otherwise its children
    /// are visited; leaves contribute point-by-point.
    ///
    /// `kernel(target, source_pos, source_strength)` must be linear in
    /// the strength (true of the Biot–Savart kernel), which is what makes
    /// aggregation valid.
    pub fn evaluate(
        &self,
        target: [f64; 3],
        theta: f64,
        kernel: &dyn Fn([f64; 3], [f64; 3], [f64; 3]) -> [f64; 3],
    ) -> [f64; 3] {
        let mut acc = [0.0f64; 3];
        let Some(root) = self.root else {
            return acc;
        };
        let mut stack = vec![root];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni as usize];
            let d2 = {
                let dx = node.center[0] - target[0];
                let dy = node.center[1] - target[1];
                let dz = node.center[2] - target[2];
                dx * dx + dy * dy + dz * dz
            };
            let size = node.size();
            let accept = node.children.is_empty()
                || (d2 > 0.0 && size * size < theta * theta * d2
                    // Never accept a cell the target might be inside.
                    && node.bounds.dist2_to(target) > 0.0);
            if accept {
                if node.children.is_empty() {
                    // Leaf: exact point-by-point contributions.
                    for &pi in &self.point_order[node.start..node.end] {
                        let u = kernel(
                            target,
                            self.points[pi as usize],
                            self.strengths[pi as usize],
                        );
                        acc[0] += u[0];
                        acc[1] += u[1];
                        acc[2] += u[2];
                    }
                } else {
                    let u = kernel(target, node.center, node.strength);
                    acc[0] += u[0];
                    acc[1] += u[1];
                    acc[2] += u[2];
                }
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
        acc
    }

    /// Total interactions a traversal with `theta` evaluates for `target`
    /// (cost diagnostics for the ablation bench).
    pub fn interaction_count(&self, target: [f64; 3], theta: f64) -> usize {
        let counter = std::cell::Cell::new(0usize);
        let kernel = |_t: [f64; 3], _p: [f64; 3], _s: [f64; 3]| -> [f64; 3] {
            counter.set(counter.get() + 1);
            [0.0; 3]
        };
        self.evaluate(target, theta, &kernel);
        counter.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize) -> (Vec<[f64; 3]>, Vec<[f64; 3]>) {
        let pts: Vec<[f64; 3]> = (0..n)
            .map(|i| {
                let t = i as f64;
                [
                    (t * 0.37).fract() * 4.0 - 2.0,
                    (t * 0.71).fract() * 4.0 - 2.0,
                    (t * 0.13).fract() - 0.5,
                ]
            })
            .collect();
        let strengths: Vec<[f64; 3]> = (0..n)
            .map(|i| {
                let t = i as f64;
                [(t * 0.29).fract() - 0.5, (t * 0.53).fract() - 0.5, 0.1]
            })
            .collect();
        (pts, strengths)
    }

    /// 1/r² kernel for testing (same form as Biot-Savart magnitude).
    fn test_kernel(t: [f64; 3], p: [f64; 3], s: [f64; 3]) -> [f64; 3] {
        let d = [p[0] - t[0], p[1] - t[1], p[2] - t[2]];
        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + 0.01;
        let inv = 1.0 / (r2 * r2.sqrt());
        [
            (d[1] * s[2] - d[2] * s[1]) * inv,
            (d[2] * s[0] - d[0] * s[2]) * inv,
            (d[0] * s[1] - d[1] * s[0]) * inv,
        ]
    }

    fn direct(target: [f64; 3], pts: &[[f64; 3]], strengths: &[[f64; 3]]) -> [f64; 3] {
        let mut acc = [0.0; 3];
        for (p, s) in pts.iter().zip(strengths) {
            let u = test_kernel(target, *p, *s);
            acc[0] += u[0];
            acc[1] += u[1];
            acc[2] += u[2];
        }
        acc
    }

    #[test]
    fn aggregates_conserve_total_strength() {
        let (pts, strengths) = cloud(500);
        let total: [f64; 3] = strengths.iter().fold([0.0; 3], |a, s| {
            [a[0] + s[0], a[1] + s[1], a[2] + s[2]]
        });
        let tree = BhTree::build(pts, strengths);
        let root = &tree.nodes[0];
        for (got, want) in root.strength.iter().zip(&total) {
            assert!((got - want).abs() < 1e-9);
        }
        assert_eq!(root.count, 500);
        assert!(tree.node_count() > 8);
    }

    #[test]
    fn theta_zero_is_exact() {
        let (pts, strengths) = cloud(300);
        let tree = BhTree::build(pts.clone(), strengths.clone());
        for i in (0..300).step_by(37) {
            let got = tree.evaluate(pts[i], 0.0, &test_kernel);
            let want = direct(pts[i], &pts, &strengths);
            for k in 0..3 {
                assert!((got[k] - want[k]).abs() < 1e-10, "target {i} comp {k}");
            }
        }
    }

    #[test]
    fn error_decreases_with_theta() {
        let (pts, strengths) = cloud(800);
        let tree = BhTree::build(pts.clone(), strengths.clone());
        // Evaluate at an external target so all cells are acceptable.
        let target = [8.0, 8.0, 3.0];
        let want = direct(target, &pts, &strengths);
        let err = |theta: f64| {
            let got = tree.evaluate(target, theta, &test_kernel);
            (0..3)
                .map(|k| (got[k] - want[k]).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let e_small = err(0.2);
        let e_big = err(1.2);
        assert!(e_small <= e_big + 1e-18, "{e_small} vs {e_big}");
        assert!(err(0.0) < 1e-12);
    }

    #[test]
    fn traversal_visits_fewer_sources_at_larger_theta() {
        let (pts, strengths) = cloud(2000);
        let tree = BhTree::build(pts.clone(), strengths);
        let count = |theta: f64| {
            let counter = std::cell::Cell::new(0usize);
            let k = |_t: [f64; 3], _p: [f64; 3], _s: [f64; 3]| -> [f64; 3] {
                counter.set(counter.get() + 1);
                [0.0; 3]
            };
            tree.evaluate(pts[0], theta, &k);
            counter.get()
        };
        let exact = count(0.0);
        let coarse = count(0.8);
        assert_eq!(exact, 2000);
        assert!(coarse < exact / 4, "coarse {coarse} vs exact {exact}");
    }

    #[test]
    fn handles_empty_and_coincident_sets() {
        let tree = BhTree::build(Vec::new(), Vec::new());
        assert!(tree.is_empty());
        assert_eq!(tree.evaluate([0.0; 3], 0.5, &test_kernel), [0.0; 3]);

        // 100 coincident points must not recurse forever.
        let pts = vec![[1.0, 1.0, 1.0]; 100];
        let strengths = vec![[0.1, 0.0, 0.0]; 100];
        let tree = BhTree::build(pts.clone(), strengths.clone());
        let got = tree.evaluate([0.0; 3], 0.0, &test_kernel);
        let want = direct([0.0; 3], &pts, &strengths);
        for k in 0..3 {
            assert!((got[k] - want[k]).abs() < 1e-10);
        }
    }

    #[test]
    fn never_accepts_cell_containing_target() {
        // A target inside a dense cluster: with huge theta the containing
        // cells must still be opened (not summarized), keeping near-field
        // contributions exact at leaf granularity.
        let (pts, strengths) = cloud(600);
        let tree = BhTree::build(pts.clone(), strengths.clone());
        let got = tree.evaluate(pts[10], 50.0, &test_kernel);
        assert!(got.iter().all(|v| v.is_finite()));
        // With θ→∞ every *external* cell collapses to one interaction but
        // the result must stay within a loose band of exact (near field
        // is exact, far field fully aggregated).
        let want = direct(pts[10], &pts, &strengths);
        let err = (0..3).map(|k| (got[k] - want[k]).powi(2)).sum::<f64>().sqrt();
        let mag = (0..3).map(|k| want[k] * want[k]).sum::<f64>().sqrt();
        assert!(err < 2.0 * mag + 1.0, "err {err} vs mag {mag}");
    }
}
