//! Wavenumber grids and Fourier-multiplier operators.
//!
//! The Z-Model's low-order solver evaluates the *linearized* Birkhoff–Rott
//! operator spectrally: for a flat vortex sheet with in-plane strength
//! `ω = (w1, w2, 0)`, the induced normal velocity is the Riesz-transform
//! pair
//!
//! ```text
//! Ŵ₃(k) = (i/2) · (k̂₁·ŵ₂(k) − k̂₂·ŵ₁(k)),   k̂ = k/|k|
//! ```
//!
//! This module provides that operator plus spectral derivatives and
//! Laplacians (used by the low/medium-order vorticity updates), all as
//! in-place multipliers on row-major 2D spectra produced by
//! [`crate::Fft2d`] or the distributed transform.

use crate::complex::Complex;

/// Signed FFT mode numbers for length `n`: `0, 1, …, n/2, −(n/2−1), …, −1`
/// (for even `n`, the Nyquist bin `n/2` is reported positive).
pub fn fft_modes(n: usize) -> Vec<i64> {
    (0..n)
        .map(|m| {
            if m <= n / 2 {
                m as i64
            } else {
                m as i64 - n as i64
            }
        })
        .collect()
}

/// Angular wavenumbers `k = 2π·mode / length` for a periodic axis of
/// physical extent `length` sampled at `n` points.
pub fn wavenumbers(n: usize, length: f64) -> Vec<f64> {
    assert!(length > 0.0, "wavenumbers: non-positive domain length");
    let scale = 2.0 * std::f64::consts::PI / length;
    fft_modes(n).into_iter().map(|m| m as f64 * scale).collect()
}

/// Wavenumber grid for a periodic `n_rows × n_cols` field over a
/// `length_y × length_x` domain (row index ↔ y, column index ↔ x).
pub struct SpectralGrid {
    n_rows: usize,
    n_cols: usize,
    ky: Vec<f64>,
    kx: Vec<f64>,
}

impl SpectralGrid {
    /// Build the grid.
    pub fn new(n_rows: usize, n_cols: usize, length_y: f64, length_x: f64) -> Self {
        SpectralGrid {
            n_rows,
            n_cols,
            ky: wavenumbers(n_rows, length_y),
            kx: wavenumbers(n_cols, length_x),
        }
    }

    /// Grid shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.n_rows, self.n_cols)
    }

    fn check(&self, spec: &[Complex]) {
        assert_eq!(
            spec.len(),
            self.n_rows * self.n_cols,
            "spectral: buffer shape mismatch"
        );
    }

    /// Whether a row/col bin is a Nyquist bin (zeroed by odd-order
    /// multipliers, the standard convention for real fields).
    fn is_nyquist(&self, r: usize, c: usize) -> bool {
        (self.n_rows.is_multiple_of(2) && r == self.n_rows / 2)
            || (self.n_cols.is_multiple_of(2) && c == self.n_cols / 2)
    }

    /// In-place spectral ∂/∂x: multiply bin (r,c) by `i·kx[c]`.
    pub fn derivative_x(&self, spec: &mut [Complex]) {
        self.check(spec);
        for r in 0..self.n_rows {
            for c in 0..self.n_cols {
                let v = &mut spec[r * self.n_cols + c];
                if self.is_nyquist(r, c) {
                    *v = Complex::default();
                } else {
                    *v = Complex::new(-v.im * self.kx[c], v.re * self.kx[c]);
                }
            }
        }
    }

    /// In-place spectral ∂/∂y: multiply bin (r,c) by `i·ky[r]`.
    pub fn derivative_y(&self, spec: &mut [Complex]) {
        self.check(spec);
        for r in 0..self.n_rows {
            for c in 0..self.n_cols {
                let v = &mut spec[r * self.n_cols + c];
                if self.is_nyquist(r, c) {
                    *v = Complex::default();
                } else {
                    *v = Complex::new(-v.im * self.ky[r], v.re * self.ky[r]);
                }
            }
        }
    }

    /// In-place spectral Laplacian: multiply bin (r,c) by `−|k|²`.
    pub fn laplacian(&self, spec: &mut [Complex]) {
        self.check(spec);
        for r in 0..self.n_rows {
            for c in 0..self.n_cols {
                let k2 = self.kx[c] * self.kx[c] + self.ky[r] * self.ky[r];
                spec[r * self.n_cols + c] = spec[r * self.n_cols + c].scale(-k2);
            }
        }
    }

    /// Flat-sheet Birkhoff–Rott normal velocity from vorticity spectra:
    /// returns `Ŵ₃ = (i/2)(k̂x·ŵ₂ − k̂y·ŵ₁)`, with the mean (k = 0) and
    /// Nyquist bins zeroed.
    ///
    /// `w1_spec`/`w2_spec` are the transforms of the two vorticity
    /// components (w1 along x/α₁, w2 along y/α₂).
    pub fn riesz_normal_velocity(&self, w1_spec: &[Complex], w2_spec: &[Complex]) -> Vec<Complex> {
        self.check(w1_spec);
        self.check(w2_spec);
        let mut out = vec![Complex::default(); w1_spec.len()];
        for r in 0..self.n_rows {
            for c in 0..self.n_cols {
                let idx = r * self.n_cols + c;
                let kx = self.kx[c];
                let ky = self.ky[r];
                let kmag = (kx * kx + ky * ky).sqrt();
                if kmag == 0.0 || self.is_nyquist(r, c) {
                    continue;
                }
                let coef = (kx * w2_spec[idx].re - ky * w1_spec[idx].re) / kmag;
                let coef_im = (kx * w2_spec[idx].im - ky * w1_spec[idx].im) / kmag;
                // (i/2) * (coef + i coef_im) = (-coef_im/2) + i(coef/2)
                out[idx] = Complex::new(-coef_im * 0.5, coef * 0.5);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft2d::Fft2d;
    use std::f64::consts::PI;

    #[test]
    fn modes_and_wavenumbers_layout() {
        assert_eq!(fft_modes(8), vec![0, 1, 2, 3, 4, -3, -2, -1]);
        assert_eq!(fft_modes(5), vec![0, 1, 2, -2, -1]);
        let k = wavenumbers(4, 2.0 * PI);
        assert!((k[1] - 1.0).abs() < 1e-12);
        assert!((k[3] + 1.0).abs() < 1e-12);
    }

    /// Helper: run op on the physical field via FFT and compare to an
    /// analytic result.
    fn spectral_apply(
        nr: usize,
        nc: usize,
        field: impl Fn(f64, f64) -> f64,
        op: impl Fn(&SpectralGrid, &mut [Complex]),
    ) -> Vec<f64> {
        let (ly, lx) = (2.0 * PI, 2.0 * PI);
        let grid = SpectralGrid::new(nr, nc, ly, lx);
        let mut buf: Vec<Complex> = (0..nr * nc)
            .map(|i| {
                let (r, c) = (i / nc, i % nc);
                let y = ly * r as f64 / nr as f64;
                let x = lx * c as f64 / nc as f64;
                Complex::real(field(x, y))
            })
            .collect();
        let plan = Fft2d::new(nr, nc);
        plan.forward(&mut buf);
        op(&grid, &mut buf);
        plan.inverse(&mut buf);
        buf.into_iter().map(|z| z.re).collect()
    }

    #[test]
    fn derivative_x_of_sin_is_cos() {
        let (nr, nc) = (8, 16);
        let out = spectral_apply(nr, nc, |x, _| (3.0 * x).sin(), |g, s| g.derivative_x(s));
        for (i, v) in out.iter().enumerate() {
            let c = i % nc;
            let x = 2.0 * PI * c as f64 / nc as f64;
            assert!((v - 3.0 * (3.0 * x).cos()).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn derivative_y_of_cos_is_minus_sin() {
        let (nr, nc) = (16, 8);
        let out = spectral_apply(nr, nc, |_, y| (2.0 * y).cos(), |g, s| g.derivative_y(s));
        for (i, v) in out.iter().enumerate() {
            let r = i / nc;
            let y = 2.0 * PI * r as f64 / nr as f64;
            assert!((v + 2.0 * (2.0 * y).sin()).abs() < 1e-9);
        }
    }

    #[test]
    fn laplacian_of_plane_wave_scales_by_minus_k2() {
        let (nr, nc) = (16, 16);
        let out = spectral_apply(
            nr,
            nc,
            |x, y| (2.0 * x).sin() * (3.0 * y).cos(),
            |g, s| g.laplacian(s),
        );
        for (i, v) in out.iter().enumerate() {
            let (r, c) = (i / nc, i % nc);
            let x = 2.0 * PI * c as f64 / nc as f64;
            let y = 2.0 * PI * r as f64 / nr as f64;
            let expect = -(4.0 + 9.0) * (2.0 * x).sin() * (3.0 * y).cos();
            assert!((v - expect).abs() < 1e-8);
        }
    }

    #[test]
    fn riesz_velocity_of_single_mode_sheet() {
        // w2 = cos(kx·x) with w1 = 0 gives Ŵ₃ = (i/2)·(kx/|kx|)·ŵ₂, i.e.
        // physical W₃ = -(1/2)·sin(kx·x) for kx > 0 modes combined with
        // their negatives: W₃(x) = Re⁻¹[(i/2)sgn(k) ŵ₂] = -(1/2) H[w₂]
        // where H is the Hilbert transform along x: H[cos] = sin… check
        // numerically against the closed form -(1/2)·sin? Derive:
        // cos(ax) = (e^{iax}+e^{-iax})/2; multiplier (i/2)·sgn(k) gives
        // (i/2)(e^{iax} - e^{-iax})/2 = (i/2)(2i sin(ax))/2 = -sin(ax)/2.
        let (nr, nc) = (8, 32);
        let a = 3.0;
        let grid = SpectralGrid::new(nr, nc, 2.0 * PI, 2.0 * PI);
        let plan = Fft2d::new(nr, nc);
        let mut w1: Vec<Complex> = vec![Complex::default(); nr * nc];
        let mut w2: Vec<Complex> = (0..nr * nc)
            .map(|i| {
                let x = 2.0 * PI * (i % nc) as f64 / nc as f64;
                Complex::real((a * x).cos())
            })
            .collect();
        plan.forward(&mut w1);
        plan.forward(&mut w2);
        let spec = grid.riesz_normal_velocity(&w1, &w2);
        let mut v = spec;
        plan.inverse(&mut v);
        for (i, z) in v.iter().enumerate() {
            let x = 2.0 * PI * (i % nc) as f64 / nc as f64;
            assert!((z.re + 0.5 * (a * x).sin()).abs() < 1e-9, "i={i}");
            assert!(z.im.abs() < 1e-9);
        }
    }

    #[test]
    fn riesz_zeroes_mean_mode() {
        let grid = SpectralGrid::new(4, 4, 1.0, 1.0);
        let mut w1 = vec![Complex::default(); 16];
        let mut w2 = vec![Complex::default(); 16];
        w1[0] = Complex::real(7.0); // pure mean
        w2[0] = Complex::real(-3.0);
        let out = grid.riesz_normal_velocity(&w1, &w2);
        assert!(out.iter().all(|z| z.abs() == 0.0));
        // and the inputs were untouched
        assert_eq!(w1[0], Complex::real(7.0));
        assert_eq!(w2[0], Complex::real(-3.0));
    }

    #[test]
    #[should_panic(expected = "non-positive domain length")]
    fn zero_length_domain_rejected() {
        let _ = wavenumbers(8, 0.0);
    }
}
