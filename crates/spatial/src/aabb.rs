//! Axis-aligned bounding boxes.

/// An axis-aligned box `[lo, hi]` in 3D (inclusive bounds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Lower corner.
    pub lo: [f64; 3],
    /// Upper corner.
    pub hi: [f64; 3],
}

impl Aabb {
    /// Box from explicit corners.
    pub fn new(lo: [f64; 3], hi: [f64; 3]) -> Self {
        for d in 0..3 {
            assert!(lo[d] <= hi[d], "aabb: inverted bounds in dim {d}");
        }
        Aabb { lo, hi }
    }

    /// Smallest box containing all `points`. Returns `None` when empty.
    pub fn bounding(points: &[[f64; 3]]) -> Option<Self> {
        let first = *points.first()?;
        let mut lo = first;
        let mut hi = first;
        for p in points {
            for d in 0..3 {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        Some(Aabb { lo, hi })
    }

    /// Grow the box by `pad` on every side.
    pub fn expanded(&self, pad: f64) -> Aabb {
        assert!(pad >= 0.0, "aabb: negative padding");
        Aabb {
            lo: [self.lo[0] - pad, self.lo[1] - pad, self.lo[2] - pad],
            hi: [self.hi[0] + pad, self.hi[1] + pad, self.hi[2] + pad],
        }
    }

    /// Whether a point lies inside (inclusive).
    pub fn contains(&self, p: [f64; 3]) -> bool {
        (0..3).all(|d| p[d] >= self.lo[d] && p[d] <= self.hi[d])
    }

    /// Squared distance from a point to the box (0 when inside).
    pub fn dist2_to(&self, p: [f64; 3]) -> f64 {
        let mut d2 = 0.0;
        for ((&lo, &hi), &x) in self.lo.iter().zip(&self.hi).zip(&p) {
            let gap = (lo - x).max(x - hi).max(0.0);
            d2 += gap * gap;
        }
        d2
    }

    /// Edge lengths.
    pub fn extents(&self) -> [f64; 3] {
        [
            self.hi[0] - self.lo[0],
            self.hi[1] - self.lo[1],
            self.hi[2] - self.lo[2],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounding_box_of_points() {
        let pts = [[0.0, 1.0, 2.0], [-1.0, 5.0, 0.0], [3.0, -2.0, 1.0]];
        let b = Aabb::bounding(&pts).unwrap();
        assert_eq!(b.lo, [-1.0, -2.0, 0.0]);
        assert_eq!(b.hi, [3.0, 5.0, 2.0]);
        assert!(Aabb::bounding(&[]).is_none());
    }

    #[test]
    fn contains_and_expand() {
        let b = Aabb::new([0.0; 3], [1.0; 3]);
        assert!(b.contains([0.5, 0.5, 0.5]));
        assert!(b.contains([0.0, 1.0, 0.5])); // boundary inclusive
        assert!(!b.contains([1.1, 0.5, 0.5]));
        let e = b.expanded(0.5);
        assert!(e.contains([1.4, -0.4, 0.0]));
        assert_eq!(e.extents(), [2.0, 2.0, 2.0]);
    }

    #[test]
    fn distance_to_box() {
        let b = Aabb::new([0.0; 3], [1.0; 3]);
        assert_eq!(b.dist2_to([0.5, 0.5, 0.5]), 0.0);
        assert_eq!(b.dist2_to([2.0, 0.5, 0.5]), 1.0);
        assert_eq!(b.dist2_to([2.0, 2.0, 0.5]), 2.0);
        assert_eq!(b.dist2_to([-3.0, 0.5, 5.0]), 9.0 + 16.0);
    }

    #[test]
    #[should_panic(expected = "inverted bounds")]
    fn inverted_bounds_rejected() {
        let _ = Aabb::new([1.0, 0.0, 0.0], [0.0, 1.0, 1.0]);
    }
}
