//! The `ProblemManager`: mesh state shared between solver components
//! (paper §3.1) — interface positions and vorticity on the surface mesh,
//! plus the halo/boundary refresh the derivative kernels rely on.

use beatnik_mesh::{BoundaryCondition, Field, SurfaceMesh};

/// Owns the evolving mesh state: position `z` (3 components) and
/// vorticity `w` (2 components) fields over one rank's block.
pub struct ProblemManager {
    mesh: SurfaceMesh,
    bc: BoundaryCondition,
    z: Field,
    w: Field,
}

impl ProblemManager {
    /// Wrap a mesh with zeroed state.
    pub fn new(mesh: SurfaceMesh, bc: BoundaryCondition) -> Self {
        if bc.is_periodic() {
            assert!(
                mesh.periodic() == [true, true],
                "periodic boundary condition requires a periodic mesh"
            );
        }
        let z = mesh.make_field(3);
        let w = mesh.make_field(2);
        ProblemManager { mesh, bc, z, w }
    }

    /// The underlying surface mesh.
    pub fn mesh(&self) -> &SurfaceMesh {
        &self.mesh
    }

    /// The boundary condition.
    pub fn bc(&self) -> &BoundaryCondition {
        &self.bc
    }

    /// Position field (3 components: x, y, z).
    pub fn z(&self) -> &Field {
        &self.z
    }

    /// Mutable position field.
    pub fn z_mut(&mut self) -> &mut Field {
        &mut self.z
    }

    /// Vorticity field (2 components: w1, w2).
    pub fn w(&self) -> &Field {
        &self.w
    }

    /// Mutable vorticity field.
    pub fn w_mut(&mut self) -> &mut Field {
        &mut self.w
    }

    /// Both fields mutably (RK stages update them together).
    pub fn state_mut(&mut self) -> (&mut Field, &mut Field) {
        (&mut self.z, &mut self.w)
    }

    /// Refresh halos and boundary ghosts of both state fields. Must be
    /// called before any stencil or geometry evaluation; collective.
    pub fn halo_all(&mut self) {
        self.mesh.halo_exchange(&mut self.z);
        self.bc.apply_position(&self.mesh, &mut self.z);
        self.mesh.halo_exchange(&mut self.w);
        self.bc.apply_field(&self.mesh, &mut self.w);
    }

    /// Halo-refresh an auxiliary scalar field consistently with the
    /// problem's boundary condition (used for `|V|²` in high order).
    pub fn halo_aux(&self, f: &mut Field) {
        self.mesh.halo_exchange(f);
        self.bc.apply_field(&self.mesh, f);
    }

    /// Owned node count on this rank.
    pub fn owned_count(&self) -> usize {
        self.mesh.owned_count()
    }

    /// Copy the owned positions in row-major owned order.
    pub fn owned_positions(&self) -> Vec<[f64; 3]> {
        let mut out = Vec::with_capacity(self.owned_count());
        for (lr, lc, _, _) in self.mesh.owned_indices() {
            let n = self.z.node(lr, lc);
            out.push([n[0], n[1], n[2]]);
        }
        out
    }

    /// Copy the owned vorticity in row-major owned order.
    pub fn owned_vorticity(&self) -> Vec<[f64; 2]> {
        let mut out = Vec::with_capacity(self.owned_count());
        for (lr, lc, _, _) in self.mesh.owned_indices() {
            let n = self.w.node(lr, lc);
            out.push([n[0], n[1]]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_comm::World;

    fn make(periodic: bool, comm: &beatnik_comm::Communicator) -> ProblemManager {
        let per = [periodic, periodic];
        let mesh = SurfaceMesh::new(comm, [8, 8], per, 2, [0.0, 0.0], [1.0, 1.0]);
        let bc = if periodic {
            BoundaryCondition::Periodic { periods: [1.0, 1.0] }
        } else {
            BoundaryCondition::Free
        };
        ProblemManager::new(mesh, bc)
    }

    #[test]
    fn state_shapes_match_mesh() {
        World::builder(4).run(|comm| {
            let pm = make(true, &comm);
            assert_eq!(pm.z().ncomp(), 3);
            assert_eq!(pm.w().ncomp(), 2);
            assert_eq!(pm.owned_count(), 16);
            assert_eq!(pm.owned_positions().len(), 16);
            assert_eq!(pm.owned_vorticity().len(), 16);
        });
    }

    #[test]
    fn halo_all_fills_position_ghosts_logically() {
        World::builder(4).run(|comm| {
            let mut pm = make(true, &comm);
            // Set z = reference coordinates.
            let coords: Vec<_> = pm.mesh().owned_indices().collect();
            for (lr, lc, gr, gc) in coords {
                let c = pm.mesh().coord_of(gr as i64, gc as i64);
                pm.z_mut().set_node(lr, lc, &[c[1], c[0], 0.0]);
            }
            pm.halo_all();
            // Ghost x positions just outside the left edge are negative.
            let [lr, _] = pm.mesh().local_shape();
            for r in 2..lr - 2 {
                let [gr, gc] = pm.mesh().global_of(r, 0);
                let want = pm.mesh().coord_of(gr, gc);
                assert!((pm.z().get(r, 0, 0) - want[1]).abs() < 1e-12);
                assert!((pm.z().get(r, 0, 1) - want[0]).abs() < 1e-12);
            }
        });
    }

    #[test]
    #[should_panic(expected = "requires a periodic mesh")]
    fn periodic_bc_on_open_mesh_rejected() {
        World::builder(1).run(|comm| {
            let mesh =
                SurfaceMesh::new(&comm, [8, 8], [false, false], 2, [0.0, 0.0], [1.0, 1.0]);
            let _ = ProblemManager::new(
                mesh,
                BoundaryCondition::Periodic { periods: [1.0, 1.0] },
            );
        });
    }
}
