//! The rank-local communicator handle: point-to-point messaging, probes,
//! splitting, and entry points to the collective algorithms.

use crate::collectives;
use crate::error::CommError;
use crate::mailbox::Mailbox;
use crate::message::{CommData, Envelope};
use crate::reduce_op::ReduceOp;
use crate::registry::{CommId, Registry};
use crate::trace::{OpKind, RankTrace};
use std::sync::Arc;
use std::time::Duration;

/// Message tag type (MPI uses `int`; we use the full `u64` space).
pub type Tag = u64;

/// Wildcard source selector for [`Communicator::recv_any`].
pub const ANY_SOURCE: usize = usize::MAX;
/// Wildcard tag selector for [`Communicator::recv_any`].
pub const ANY_TAG: Tag = u64::MAX;

/// Collective traffic travels on a shadow channel so user receives with
/// wildcard selectors can never steal a collective's internal messages.
const COLLECTIVE_CHANNEL: CommId = 1 << 63;

/// A rank's handle to one communication group.
///
/// Cloning is intentionally not provided: like an `MPI_Comm`, a
/// `Communicator` is a per-rank resource that methods take `&self` on;
/// derived groups are created with [`Communicator::split`].
pub struct Communicator {
    registry: Arc<Registry>,
    comm_id: CommId,
    rank: usize,
    size: usize,
    /// Map from comm-local rank to world rank (identity for the world
    /// communicator), used to attribute traffic in the communication
    /// matrix.
    world_of: Arc<Vec<usize>>,
    trace: Arc<RankTrace>,
    /// Receives panic after this long without a matching message. This
    /// converts distributed deadlocks (a bug class this runtime exists to
    /// help find) into loud failures rather than silent hangs.
    recv_timeout: Duration,
}

impl Communicator {
    /// Construct a communicator handle. Crate-internal: users obtain
    /// communicators from [`crate::World::run`] or [`Communicator::split`].
    pub(crate) fn new(
        registry: Arc<Registry>,
        comm_id: CommId,
        rank: usize,
        size: usize,
        world_of: Arc<Vec<usize>>,
        trace: Arc<RankTrace>,
        recv_timeout: Duration,
    ) -> Self {
        Communicator {
            registry,
            comm_id,
            rank,
            size,
            world_of,
            trace,
            recv_timeout,
        }
    }

    /// The world rank of a comm-local rank.
    pub fn world_rank_of(&self, local: usize) -> usize {
        self.world_of[local]
    }

    /// This rank's index within the communicator, in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The per-world-rank instrumentation shared by this communicator and
    /// all communicators derived from it.
    pub fn trace(&self) -> &Arc<RankTrace> {
        &self.trace
    }

    /// Identifier of this communicator within its world (diagnostics).
    pub fn id(&self) -> CommId {
        self.comm_id
    }

    fn check_rank(&self, r: usize) -> Result<(), CommError> {
        if r >= self.size {
            Err(CommError::InvalidRank {
                rank: r,
                size: self.size,
            })
        } else {
            Ok(())
        }
    }

    fn mailbox_for(&self, channel: CommId, rank: usize) -> Arc<Mailbox> {
        self.registry.mailbox(self.comm_id | channel, rank)
    }

    /// Blocking receive that wakes early when the world aborts (a peer
    /// rank panicked), so failures surface immediately instead of after a
    /// full receive timeout.
    fn blocking_recv(&self, channel: CommId, src: usize, tag: Tag, ctx: &str) -> Envelope {
        let mb = self.mailbox_for(channel, self.rank);
        let deadline = std::time::Instant::now() + self.recv_timeout;
        // Poll in short slices purely to observe the abort flag; messages
        // wake the condvar directly, so latency is unaffected.
        let slice = Duration::from_millis(100).min(self.recv_timeout);
        loop {
            match mb.recv_matching_timeout(self.rank, src, tag, slice) {
                Ok(env) => return env,
                Err(e) => {
                    if self.registry.aborted() {
                        panic!(
                            "rank {} aborting during {ctx}: a peer rank failed",
                            self.rank
                        );
                    }
                    if std::time::Instant::now() >= deadline {
                        panic!("{ctx} deadlock on rank {}: {e}", self.rank);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Point-to-point, user channel
    // ------------------------------------------------------------------

    /// Buffered send of an owned buffer to `dest`. Never blocks.
    ///
    /// The buffer moves to the receiver without copying, mirroring an MPI
    /// eager-protocol send at intra-process speed.
    pub fn send<T: CommData>(&self, dest: usize, tag: Tag, data: Vec<T>) {
        self.check_rank(dest).expect("send: invalid destination");
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        self.trace.record(OpKind::Send, 1, bytes);
        self.trace.record_peer(self.world_of[dest], bytes);
        self.mailbox_for(0, dest).push(Envelope::new(self.rank, tag, data));
    }

    /// Convenience: send a single value.
    pub fn send_one<T: CommData>(&self, dest: usize, tag: Tag, value: T) {
        self.send(dest, tag, vec![value]);
    }

    /// Blocking receive of a buffer matching exactly `(src, tag)`.
    ///
    /// # Panics
    /// Panics if no matching message arrives within the configured receive
    /// timeout, or if the message's element type differs from `T`.
    pub fn recv<T: CommData>(&self, src: usize, tag: Tag) -> Vec<T> {
        self.check_rank(src).expect("recv: invalid source");
        self.recv_selected(src, tag)
    }

    /// Blocking receive allowing [`ANY_SOURCE`] / [`ANY_TAG`] wildcards.
    /// Returns the payload together with the actual source and tag.
    pub fn recv_any<T: CommData>(&self, src: usize, tag: Tag) -> (Vec<T>, usize, Tag) {
        let env = self.blocking_recv(0, src, tag, "recv_any");
        self.trace.record(OpKind::Recv, 0, 0);
        let (s, t) = (env.src, env.tag);
        (env.into_data(), s, t)
    }

    fn recv_selected<T: CommData>(&self, src: usize, tag: Tag) -> Vec<T> {
        let env = self.blocking_recv(0, src, tag, "recv");
        self.trace.record(OpKind::Recv, 0, 0);
        env.into_data()
    }

    /// Receive exactly one value.
    pub fn recv_one<T: CommData>(&self, src: usize, tag: Tag) -> T {
        let mut v = self.recv::<T>(src, tag);
        assert_eq!(v.len(), 1, "recv_one: expected exactly one element");
        v.pop().unwrap()
    }

    /// Combined send-then-receive (deadlock-free because sends are
    /// buffered); the workhorse of ring and pairwise exchange algorithms.
    pub fn sendrecv<T: CommData>(
        &self,
        dest: usize,
        send_data: Vec<T>,
        src: usize,
        tag: Tag,
    ) -> Vec<T> {
        self.send(dest, tag, send_data);
        self.recv(src, tag)
    }

    /// Non-blocking check whether a matching message is waiting.
    pub fn probe(&self, src: usize, tag: Tag) -> bool {
        self.mailbox_for(0, self.rank).probe(src, tag)
    }

    /// Non-blocking receive: returns the payload if a matching message is
    /// already queued, `None` otherwise (never blocks). Supports the same
    /// wildcards as [`Communicator::recv_any`].
    pub fn try_recv<T: CommData>(&self, src: usize, tag: Tag) -> Option<Vec<T>> {
        let mb = self.mailbox_for(0, self.rank);
        if !mb.probe(src, tag) {
            return None;
        }
        // A matching message exists and nothing else drains this mailbox
        // (one receiver per rank), so this cannot block.
        let env = mb.recv_matching(src, tag);
        self.trace.record(OpKind::Recv, 0, 0);
        Some(env.into_data())
    }

    // ------------------------------------------------------------------
    // Point-to-point, collective shadow channel (crate-internal)
    // ------------------------------------------------------------------

    /// Send on the collective channel, attributing traffic to `kind`.
    pub(crate) fn coll_send<T: CommData>(&self, dest: usize, tag: Tag, data: Vec<T>, kind: OpKind) {
        debug_assert!(dest < self.size);
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        self.trace.add_traffic(kind, 1, bytes);
        self.trace.record_peer(self.world_of[dest], bytes);
        self.mailbox_for(COLLECTIVE_CHANNEL, dest)
            .push(Envelope::new(self.rank, tag, data));
    }

    /// Receive on the collective channel.
    pub(crate) fn coll_recv<T: CommData>(&self, src: usize, tag: Tag) -> Vec<T> {
        self.blocking_recv(COLLECTIVE_CHANNEL, src, tag, "collective")
            .into_data()
    }

    /// Record that a collective of `kind` was invoked once on this rank.
    pub(crate) fn coll_begin(&self, kind: OpKind) {
        self.trace.record(kind, 0, 0);
    }

    // ------------------------------------------------------------------
    // Collectives (delegating to `collectives::*`)
    // ------------------------------------------------------------------

    /// Block until every rank of the communicator has entered the barrier.
    pub fn barrier(&self) {
        collectives::barrier::barrier(self);
    }

    /// Broadcast `root`'s buffer to every rank (binomial tree).
    pub fn broadcast<T: CommData + Clone>(&self, root: usize, data: Option<Vec<T>>) -> Vec<T> {
        collectives::broadcast::broadcast(self, root, data)
    }

    /// Reduce values to `root` with `op` (binomial tree). Non-roots get `None`.
    pub fn reduce<T: CommData + Clone, O: ReduceOp<T>>(
        &self,
        root: usize,
        value: T,
        op: &O,
    ) -> Option<T> {
        collectives::reduce::reduce(self, root, value, op)
    }

    /// Reduce element-wise over vectors to `root`.
    pub fn reduce_vec<T: CommData + Clone, O: ReduceOp<T>>(
        &self,
        root: usize,
        value: Vec<T>,
        op: &O,
    ) -> Option<Vec<T>> {
        collectives::reduce::reduce_vec(self, root, value, op)
    }

    /// Allreduce a single value (recursive doubling / reduce+broadcast).
    pub fn allreduce<T: CommData + Clone, O: ReduceOp<T>>(&self, value: T, op: &O) -> T {
        collectives::reduce::allreduce(self, value, op)
    }

    /// Element-wise allreduce over vectors.
    pub fn allreduce_vec<T: CommData + Clone, O: ReduceOp<T>>(&self, value: Vec<T>, op: &O) -> Vec<T> {
        collectives::reduce::allreduce_vec(self, value, op)
    }

    /// Sum an `f64` across all ranks.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        self.allreduce(value, &crate::reduce_op::SumOp)
    }

    /// Maximum of an `f64` across all ranks.
    pub fn allreduce_max(&self, value: f64) -> f64 {
        self.allreduce(value, &crate::reduce_op::MaxOp)
    }

    /// Minimum of an `f64` across all ranks.
    pub fn allreduce_min(&self, value: f64) -> f64 {
        self.allreduce(value, &crate::reduce_op::MinOp)
    }

    /// Gather every rank's buffer to `root` (non-roots get `None`).
    pub fn gather<T: CommData + Clone>(&self, root: usize, data: Vec<T>) -> Option<Vec<Vec<T>>> {
        collectives::gather::gather(self, root, data)
    }

    /// Gather every rank's buffer to every rank (ring algorithm).
    pub fn allgather<T: CommData + Clone>(&self, data: Vec<T>) -> Vec<Vec<T>> {
        collectives::gather::allgather(self, data)
    }

    /// Scatter `root`'s per-rank buffers (non-root passes `None`).
    pub fn scatter<T: CommData + Clone>(&self, root: usize, data: Option<Vec<Vec<T>>>) -> Vec<T> {
        collectives::scatter::scatter(self, root, data)
    }

    /// Regular all-to-all with the default (pairwise-exchange) algorithm.
    /// `blocks[d]` is this rank's block destined for rank `d`; the result's
    /// entry `s` is the block received from rank `s`.
    pub fn alltoall<T: CommData + Clone>(&self, blocks: Vec<Vec<T>>) -> Vec<Vec<T>> {
        collectives::alltoall::alltoall(self, blocks, collectives::alltoall::AllToAllAlgo::Pairwise)
    }

    /// Regular all-to-all with an explicit algorithm choice.
    pub fn alltoall_with<T: CommData + Clone>(
        &self,
        blocks: Vec<Vec<T>>,
        algo: collectives::alltoall::AllToAllAlgo,
    ) -> Vec<Vec<T>> {
        collectives::alltoall::alltoall(self, blocks, algo)
    }

    /// Irregular all-to-all (per-destination counts may differ and may be
    /// zero). Same semantics as [`Communicator::alltoall`].
    pub fn alltoallv<T: CommData + Clone>(&self, blocks: Vec<Vec<T>>) -> Vec<Vec<T>> {
        collectives::alltoall::alltoallv(self, blocks)
    }

    /// Irregular all-to-all with an explicit algorithm choice.
    pub fn alltoallv_with<T: CommData + Clone>(
        &self,
        blocks: Vec<Vec<T>>,
        algo: collectives::alltoall::AllToAllAlgo,
    ) -> Vec<Vec<T>> {
        collectives::alltoall::alltoallv_with(self, blocks, algo)
    }

    /// Inclusive prefix reduction: rank r gets `v_0 ⊕ … ⊕ v_r`.
    pub fn scan<T: CommData + Clone, O: ReduceOp<T>>(&self, value: T, op: &O) -> T {
        collectives::scan::scan(self, value, op)
    }

    /// Exclusive prefix reduction (`None` on rank 0).
    pub fn exscan<T: CommData + Clone, O: ReduceOp<T>>(&self, value: T, op: &O) -> Option<T> {
        collectives::scan::exscan(self, value, op)
    }

    /// Reduce-scatter: element-wise reduce one block per destination and
    /// return this rank's reduced block.
    pub fn reduce_scatter<T: CommData + Clone, O: ReduceOp<T>>(
        &self,
        contributions: Vec<Vec<T>>,
        op: &O,
    ) -> Vec<T> {
        collectives::scan::reduce_scatter(self, contributions, op)
    }

    // ------------------------------------------------------------------
    // Group management
    // ------------------------------------------------------------------

    /// Partition the communicator into disjoint groups, one per distinct
    /// `color`; within a group ranks are ordered by `(key, old rank)`.
    /// Ranks passing `color = None` (MPI's `MPI_UNDEFINED`) get `None`
    /// back. Collective over the communicator.
    pub fn split(&self, color: Option<u64>, key: i64) -> Option<Communicator> {
        // Exchange (color?, key, old_rank) triples; encode None as u64::MAX
        // (reserved — asserted below).
        if let Some(c) = color {
            assert_ne!(c, u64::MAX, "split: color u64::MAX is reserved");
        }
        let triple = (color.unwrap_or(u64::MAX), key, self.rank);
        let all = self.allgather(vec![triple]);
        let mut entries: Vec<(u64, i64, usize)> = all.into_iter().map(|v| v[0]).collect();
        entries.sort_unstable();

        // Enumerate color groups in sorted color order.
        let mut colors: Vec<u64> = entries
            .iter()
            .map(|e| e.0)
            .filter(|&c| c != u64::MAX)
            .collect();
        colors.dedup();
        let num_groups = colors.len() as u64;

        // Rank 0 of the parent allocates a contiguous id block; everyone
        // then derives the same per-group id deterministically.
        let base = if self.rank == 0 {
            let b = self.registry.allocate_comm_ids(num_groups.max(1));
            self.broadcast(0, Some(vec![b]))[0]
        } else {
            self.broadcast::<u64>(0, None)[0]
        };

        let my_color = color?;
        let group_index = colors.iter().position(|&c| c == my_color).unwrap() as u64;
        let members: Vec<(u64, i64, usize)> = entries
            .iter()
            .copied()
            .filter(|e| e.0 == my_color)
            .collect();
        // `entries` is sorted by (color, key, old_rank), so `members` is
        // already in new-rank order.
        let new_rank = members
            .iter()
            .position(|&(_, _, old)| old == self.rank)
            .unwrap();
        let world_of: Arc<Vec<usize>> = Arc::new(
            members
                .iter()
                .map(|&(_, _, old)| self.world_of[old])
                .collect(),
        );
        Some(Communicator::new(
            Arc::clone(&self.registry),
            base + group_index,
            new_rank,
            members.len(),
            world_of,
            Arc::clone(&self.trace),
            self.recv_timeout,
        ))
    }

    /// Duplicate the communicator into an independent message space with
    /// the same group (like `MPI_Comm_dup`). Collective.
    pub fn duplicate(&self) -> Communicator {
        self.split(Some(0), self.rank as i64)
            .expect("duplicate: split returned None")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn rank_and_size_are_consistent() {
        let sizes = World::run(5, |c| {
            assert!(c.rank() < c.size());
            c.size()
        });
        assert_eq!(sizes, vec![5; 5]);
    }

    #[test]
    fn p2p_roundtrip_between_two_ranks() {
        World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1.5f64, 2.5]);
                let back: Vec<f64> = c.recv(1, 8);
                assert_eq!(back, vec![4.0]);
            } else {
                let v: Vec<f64> = c.recv(0, 7);
                assert_eq!(v, vec![1.5, 2.5]);
                c.send(0, 8, vec![v.iter().sum::<f64>()]);
            }
        });
    }

    #[test]
    fn wildcard_recv_reports_actual_source_and_tag() {
        World::run(3, |c| {
            if c.rank() == 0 {
                let mut seen = vec![];
                for _ in 0..2 {
                    let (v, src, tag) = c.recv_any::<u32>(ANY_SOURCE, ANY_TAG);
                    seen.push((v[0], src, tag));
                }
                seen.sort_unstable();
                assert_eq!(seen, vec![(10, 1, 100), (20, 2, 200)]);
            } else if c.rank() == 1 {
                c.send(0, 100, vec![10u32]);
            } else {
                c.send(0, 200, vec![20u32]);
            }
        });
    }

    #[test]
    fn sendrecv_ring_shifts_values() {
        let out = World::run(4, |c| {
            let right = (c.rank() + 1) % 4;
            let left = (c.rank() + 3) % 4;
            let got = c.sendrecv(right, vec![c.rank() as u64], left, 3);
            got[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn probe_sees_pending_message() {
        World::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 9, vec![1u8]);
                c.barrier();
            } else {
                c.barrier();
                assert!(c.probe(0, 9));
                assert!(!c.probe(0, 10));
                let _ = c.recv::<u8>(0, 9);
                assert!(!c.probe(0, 9));
            }
        });
    }

    #[test]
    fn messages_with_same_selector_do_not_overtake() {
        World::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..50u32 {
                    c.send(1, 1, vec![i]);
                }
            } else {
                for i in 0..50u32 {
                    assert_eq!(c.recv_one::<u32>(0, 1), i);
                }
            }
        });
    }

    #[test]
    fn split_groups_by_parity() {
        World::run(6, |c| {
            let color = (c.rank() % 2) as u64;
            let sub = c.split(Some(color), c.rank() as i64).unwrap();
            assert_eq!(sub.size(), 3);
            assert_eq!(sub.rank(), c.rank() / 2);
            // Sum world ranks within the subgroup.
            let s = sub.allreduce_sum(c.rank() as f64);
            if color == 0 {
                assert_eq!(s, 0.0 + 2.0 + 4.0);
            } else {
                assert_eq!(s, 1.0 + 3.0 + 5.0);
            }
        });
    }

    #[test]
    fn split_with_undefined_color_returns_none() {
        World::run(4, |c| {
            let sub = if c.rank() == 0 {
                c.split(None, 0)
            } else {
                c.split(Some(1), c.rank() as i64)
            };
            if c.rank() == 0 {
                assert!(sub.is_none());
            } else {
                let sub = sub.unwrap();
                assert_eq!(sub.size(), 3);
            }
        });
    }

    #[test]
    fn split_key_reverses_rank_order() {
        World::run(4, |c| {
            let sub = c.split(Some(0), -(c.rank() as i64)).unwrap();
            assert_eq!(sub.rank(), 3 - c.rank());
        });
    }

    #[test]
    fn duplicated_comm_is_an_independent_message_space() {
        World::run(2, |c| {
            let dup = c.duplicate();
            assert_eq!(dup.size(), 2);
            if c.rank() == 0 {
                c.send(1, 5, vec![1u8]);
                dup.send(1, 5, vec![2u8]);
            } else {
                // Receive from the duplicate first: must not see the
                // message sent on the parent.
                assert_eq!(dup.recv_one::<u8>(0, 5), 2);
                assert_eq!(c.recv_one::<u8>(0, 5), 1);
            }
        });
    }

    #[test]
    #[should_panic(expected = "invalid destination")]
    fn send_to_out_of_range_rank_panics() {
        World::run(1, |c| {
            c.send(5, 0, vec![0u8]);
        });
    }

    #[test]
    fn trace_counts_p2p_bytes() {
        let (_, trace) = World::run_traced(2, |c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![0u64; 16]); // 128 bytes
            } else {
                let _ = c.recv::<u64>(0, 0);
            }
        });
        let s = trace.rank(0).get(OpKind::Send);
        assert_eq!(s.calls, 1);
        assert_eq!(s.messages, 1);
        assert_eq!(s.bytes, 128);
        assert_eq!(trace.rank(1).get(OpKind::Recv).calls, 1);
    }
}
