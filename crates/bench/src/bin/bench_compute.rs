//! Node-local compute-kernel microbenchmark emitting
//! `BENCH_compute.json`.
//!
//! Times the two kernel families the raw-speed pass rewrote, each in
//! its fast and reference form so the gate pins the speedup's
//! *existence* (the fast variant's time) and the reference's sanity:
//!
//! * **FFT butterflies** — a planned power-of-two forward transform
//!   through the dispatched SIMD kernels (`fft_forward/simd`) and the
//!   forced lane-serial path (`fft_forward/scalar`). Reported as
//!   ns per element per transform; the two paths are bit-for-bit
//!   identical in output, so the delta is pure kernel speed.
//! * **Column pack** — the cache-blocked tiled column gather/scatter
//!   from `beatnik-dfft` (`pack_gather/tiled`) against a
//!   column-at-a-time strided gather (`pack_gather/columnwise`), the
//!   shape the tiled kernel replaced. Reported as ns per element moved,
//!   with an informational GB/s (read+write traffic).
//!
//! Best-of-N trials: noise on a shared host only ever slows a trial
//! down, so the minimum is the honest kernel time.
//!
//! Usage: `bench_compute [output.json]` (default `BENCH_compute.json`).

use beatnik_dfft::layout::{gather_cols, scatter_cols, COL_TILE};
use beatnik_fft::{Complex, Fft};
use beatnik_json::Value;
use std::time::Instant;

const TRIALS: usize = 7;

struct Row {
    kernel: &'static str,
    variant: &'static str,
    n: usize,
    ns_per_elem: f64,
    gbps: f64,
}

impl Row {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("kernel".into(), Value::Str(self.kernel.into())),
            ("variant".into(), Value::Str(self.variant.into())),
            ("n".into(), Value::UInt(self.n as u64)),
            ("ns_per_elem".into(), Value::Float(self.ns_per_elem)),
            ("gbps".into(), Value::Float(self.gbps)),
        ])
    }
}

/// Best-of-TRIALS wall time of `reps` runs of `f`, in ns per rep.
fn best_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / reps as f64);
    }
    best
}

fn noise(n: usize) -> Vec<Complex> {
    let mut s = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    (0..n).map(|_| Complex::new(next(), next())).collect()
}

/// FFT forward transforms: SIMD-dispatched vs forced-scalar, ns/elem.
fn bench_fft(rows: &mut Vec<Row>, n: usize, reps: usize) {
    let plan = Fft::new(n);
    let mut buf = noise(n);
    // Warmup (twiddle tables are already built; touch the caches).
    plan.forward(&mut buf);
    plan.forward_scalar(&mut buf);
    let data = noise(n);

    let mut scratch = data.clone();
    let simd_ns = best_ns(reps, || {
        scratch.copy_from_slice(&data);
        plan.forward(&mut scratch);
    });
    let scalar_ns = best_ns(reps, || {
        scratch.copy_from_slice(&data);
        plan.forward_scalar(&mut scratch);
    });
    // 16 payload bytes per element per transform pass is a nominal
    // traffic figure; the honest gated metric is time per element.
    let gbps = |ns: f64| (n * 16) as f64 / ns;
    rows.push(Row {
        kernel: "fft_forward",
        variant: "simd",
        n,
        ns_per_elem: simd_ns / n as f64,
        gbps: gbps(simd_ns),
    });
    rows.push(Row {
        kernel: "fft_forward",
        variant: "scalar",
        n,
        ns_per_elem: scalar_ns / n as f64,
        gbps: gbps(scalar_ns),
    });
    eprintln!(
        "fft_forward      n={n:<6} simd {:>7.3} ns/elem  scalar {:>7.3} ns/elem  speedup {:.2}x",
        simd_ns / n as f64,
        scalar_ns / n as f64,
        scalar_ns / simd_ns
    );
}

/// Column-at-a-time strided gather/scatter: the element-wise shape the
/// tiled kernels replaced, kept here as the measured reference.
fn gather_scatter_columnwise(buf: &mut [Complex], nrows: usize, ncols: usize, col: &mut [Complex]) {
    for c in 0..ncols {
        for r in 0..nrows {
            col[r] = buf[r * ncols + c];
        }
        for r in 0..nrows {
            buf[r * ncols + c] = col[r];
        }
    }
}

/// Tiled gather/scatter roundtrip over every column, matching the
/// traffic of the columnwise reference.
fn gather_scatter_tiled(buf: &mut [Complex], nrows: usize, ncols: usize, tile: &mut [Complex]) {
    for c0 in (0..ncols).step_by(COL_TILE) {
        let tc = COL_TILE.min(ncols - c0);
        let t = &mut tile[..nrows * tc];
        gather_cols(buf, ncols, c0, tc, t);
        scatter_cols(t, ncols, c0, tc, buf);
    }
}

/// Column pack kernels over an `nrows x ncols` grid: tiled vs
/// columnwise, ns per element moved (one gather + one scatter).
fn bench_pack(rows: &mut Vec<Row>, nrows: usize, ncols: usize, reps: usize) {
    let n = nrows * ncols;
    let mut buf = noise(n);
    let mut col = vec![Complex::default(); nrows];
    let mut tile = vec![Complex::default(); nrows * COL_TILE.min(ncols)];

    gather_scatter_tiled(&mut buf, nrows, ncols, &mut tile); // warmup
    let tiled_ns = best_ns(reps, || gather_scatter_tiled(&mut buf, nrows, ncols, &mut tile));
    gather_scatter_columnwise(&mut buf, nrows, ncols, &mut col); // warmup
    let columnwise_ns =
        best_ns(reps, || gather_scatter_columnwise(&mut buf, nrows, ncols, &mut col));

    // Each element is read+written twice per roundtrip: 64 B of traffic.
    let gbps = |ns: f64| (n * 64) as f64 / ns;
    rows.push(Row {
        kernel: "pack_gather",
        variant: "tiled",
        n,
        ns_per_elem: tiled_ns / n as f64,
        gbps: gbps(tiled_ns),
    });
    rows.push(Row {
        kernel: "pack_gather",
        variant: "columnwise",
        n,
        ns_per_elem: columnwise_ns / n as f64,
        gbps: gbps(columnwise_ns),
    });
    eprintln!(
        "pack_gather      {nrows}x{ncols:<5} tiled {:>6.2} GB/s  columnwise {:>6.2} GB/s  speedup {:.2}x",
        gbps(tiled_ns),
        gbps(columnwise_ns),
        columnwise_ns / tiled_ns
    );
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_compute.json".into());
    let mut rows: Vec<Row> = Vec::new();

    // Butterfly kernels: an L1-resident size and an L2-resident size.
    bench_fft(&mut rows, 1024, 2000);
    bench_fft(&mut rows, 16384, 200);

    // Pack kernels: a column count past any cache line (1024 columns of
    // 16 B each = 16 KiB row stride) over enough rows that columns do
    // not stay resident between passes.
    bench_pack(&mut rows, 512, 1024, 20);

    let doc = Value::Object(vec![(
        "benches".into(),
        Value::Array(rows.iter().map(Row::to_value).collect()),
    )]);
    std::fs::write(&path, beatnik_json::to_string_pretty(&doc))
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("wrote {path}");
}
