//! The job model: what a tenant submits (`JobSpec`), what the scheduler
//! tracks (`JobRecord`), and the validation that gates admission.
//!
//! Specs arrive as JSON over `POST /jobs`. Parsing is deliberately
//! forgiving about *absent* fields (everything but `ranks` has a
//! default) and deliberately strict about *present* ones: an unknown
//! order, an oversized mesh, or a malformed fault plan is rejected with
//! a stable, testable error message before the job ever touches the
//! scheduler.

use beatnik_json::{JsonError, ToJson, Value};

/// Hard admission limits; per-deployment knobs live in
/// [`crate::scheduler::SchedulerConfig`].
#[derive(Debug, Clone, Copy)]
pub struct JobLimits {
    /// Largest accepted mesh edge (`n` × `n` surface nodes).
    pub max_mesh_n: usize,
    /// Largest accepted step count.
    pub max_steps: usize,
    /// Rank slots in the pool (a job whose *minimum* gang exceeds this
    /// can never run and is rejected outright).
    pub pool_ranks: usize,
}

impl Default for JobLimits {
    fn default() -> Self {
        JobLimits {
            max_mesh_n: 256,
            max_steps: 100_000,
            pool_ranks: 8,
        }
    }
}

/// Highest accepted priority (inclusive). 0 is background; higher wins.
pub const MAX_PRIORITY: u8 = 9;

/// A simulation job as submitted by a tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Display name (free-form, defaults to `"job"`).
    pub name: String,
    /// Input deck: `multimode` or `singlemode`.
    pub deck: String,
    /// Model order: `low`, `medium`, or `high`.
    pub order: String,
    /// Surface mesh nodes per axis.
    pub mesh_n: usize,
    /// Timesteps to run.
    pub steps: usize,
    /// Requested gang size (rank slots).
    pub ranks: usize,
    /// Smallest gang the job accepts when resumed elastically after a
    /// preemption (defaults to 1).
    pub min_ranks: usize,
    /// Priority 0..=9; higher preempts lower (defaults to 4).
    pub priority: u8,
    /// Soft completion deadline in ms from submission; orders jobs
    /// within a priority class (earliest first).
    pub deadline_ms: Option<u64>,
    /// Transport backend: `thread`, `shmem`, or `tcp` (defaults to
    /// `thread`).
    pub transport: String,
    /// Fault-injection plan spec (see `beatnik_comm::FaultPlan`).
    /// Fault-plan jobs run the fault-tolerant driver and are not
    /// preemptible.
    pub faults: Option<String>,
    /// Checkpoint cadence in steps (0 = only when preempted).
    pub checkpoint_every: usize,
    /// Timestep size override.
    pub dt: Option<f64>,
    /// Record span telemetry and attach a critical-path summary to the
    /// job record (costs ~2 MiB of span ring per rank).
    pub profile: bool,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            name: "job".to_string(),
            deck: "multimode".to_string(),
            order: "low".to_string(),
            mesh_n: 16,
            steps: 4,
            ranks: 1,
            min_ranks: 1,
            priority: 4,
            deadline_ms: None,
            transport: "thread".to_string(),
            faults: None,
            checkpoint_every: 0,
            dt: None,
            profile: false,
        }
    }
}

impl ToJson for JobSpec {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("deck".into(), Value::Str(self.deck.clone())),
            ("order".into(), Value::Str(self.order.clone())),
            ("mesh_n".into(), Value::UInt(self.mesh_n as u64)),
            ("steps".into(), Value::UInt(self.steps as u64)),
            ("ranks".into(), Value::UInt(self.ranks as u64)),
            ("min_ranks".into(), Value::UInt(self.min_ranks as u64)),
            ("priority".into(), Value::UInt(self.priority as u64)),
            ("deadline_ms".into(), self.deadline_ms.to_json()),
            ("transport".into(), Value::Str(self.transport.clone())),
            ("faults".into(), self.faults.to_json()),
            (
                "checkpoint_every".into(),
                Value::UInt(self.checkpoint_every as u64),
            ),
            ("dt".into(), self.dt.to_json()),
            ("profile".into(), Value::Bool(self.profile)),
        ])
    }
}

/// Read `key` if present, else fall back to `default`.
fn opt_field<T: beatnik_json::FromJson>(
    v: &Value,
    key: &str,
    default: T,
) -> Result<T, JsonError> {
    match beatnik_json::field::<Option<T>>(v, key)? {
        Some(x) => Ok(x),
        None => Ok(default),
    }
}

impl beatnik_json::FromJson for JobSpec {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        if !matches!(v, Value::Object(_)) {
            return Err(JsonError::new(format!(
                "job spec must be a JSON object, got {}",
                v.kind()
            )));
        }
        let d = JobSpec::default();
        Ok(JobSpec {
            name: opt_field(v, "name", d.name)?,
            deck: opt_field(v, "deck", d.deck)?,
            order: opt_field(v, "order", d.order)?,
            mesh_n: opt_field(v, "mesh_n", d.mesh_n)?,
            steps: opt_field(v, "steps", d.steps)?,
            ranks: opt_field(v, "ranks", d.ranks)?,
            min_ranks: opt_field(v, "min_ranks", d.min_ranks)?,
            priority: opt_field(v, "priority", d.priority)?,
            deadline_ms: beatnik_json::field(v, "deadline_ms")?,
            transport: opt_field(v, "transport", d.transport)?,
            faults: beatnik_json::field(v, "faults")?,
            checkpoint_every: opt_field(v, "checkpoint_every", d.checkpoint_every)?,
            dt: beatnik_json::field(v, "dt")?,
            profile: opt_field(v, "profile", d.profile)?,
        })
    }
}

impl JobSpec {
    /// Validate against admission limits. Error strings are stable —
    /// the HTTP golden tests pin them.
    pub fn validate(&self, limits: &JobLimits) -> Result<(), String> {
        match self.deck.as_str() {
            "multimode" | "singlemode" => {}
            other => return Err(format!("unknown deck '{other}' (multimode|singlemode)")),
        }
        match self.order.as_str() {
            "low" | "medium" | "high" => {}
            other => return Err(format!("unknown order '{other}' (low|medium|high)")),
        }
        match self.transport.as_str() {
            "thread" | "shmem" | "tcp" => {}
            other => return Err(format!("unknown transport '{other}' (thread|shmem|tcp)")),
        }
        if self.mesh_n < 8 {
            return Err(format!("mesh_n {} below minimum 8", self.mesh_n));
        }
        if self.mesh_n > limits.max_mesh_n {
            return Err(format!(
                "mesh_n {} exceeds limit {}",
                self.mesh_n, limits.max_mesh_n
            ));
        }
        if self.steps == 0 {
            return Err("steps must be at least 1".to_string());
        }
        if self.steps > limits.max_steps {
            return Err(format!(
                "steps {} exceeds limit {}",
                self.steps, limits.max_steps
            ));
        }
        if self.ranks == 0 {
            return Err("ranks must be at least 1".to_string());
        }
        if self.min_ranks == 0 || self.min_ranks > self.ranks {
            return Err(format!(
                "min_ranks {} must be in 1..=ranks ({})",
                self.min_ranks, self.ranks
            ));
        }
        if self.min_ranks > limits.pool_ranks {
            return Err(format!(
                "min_ranks {} can never fit the {}-rank pool",
                self.min_ranks, limits.pool_ranks
            ));
        }
        if self.priority > MAX_PRIORITY {
            return Err(format!(
                "priority {} exceeds maximum {MAX_PRIORITY}",
                self.priority
            ));
        }
        if let Some(dt) = self.dt {
            if dt <= 0.0 || !dt.is_finite() {
                return Err(format!("dt {dt} must be a positive finite number"));
            }
        }
        if let Some(spec) = &self.faults {
            beatnik_comm::FaultPlan::parse(spec, 0)
                .map_err(|e| format!("bad fault plan: {e}"))?;
        }
        Ok(())
    }
}

/// Lifecycle states of a job. `Preempted` means "checkpointed and back
/// in the queue"; a preempt *request* still shows as `Running` until
/// the gang reaches its next step boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a gang of rank slots.
    Queued,
    /// Executing on a leased gang.
    Running,
    /// Paused by the scheduler; checkpoint written, awaiting resume.
    Preempted,
    /// Finished successfully.
    Completed,
    /// Runner returned an error or panicked.
    Failed,
    /// Canceled by `DELETE /jobs/{id}`.
    Canceled,
}

impl JobState {
    /// Lower-case wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Preempted => "preempted",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
        }
    }

    /// Numeric code for the per-job state gauge.
    pub fn code(&self) -> u64 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Preempted => 2,
            JobState::Completed => 3,
            JobState::Failed => 4,
            JobState::Canceled => 5,
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Canceled
        )
    }
}

/// Final result of a completed job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobResult {
    /// Steps actually executed (equals the spec's `steps`).
    pub steps: usize,
    /// Final interface amplitude.
    pub amplitude: f64,
    /// Final enstrophy.
    pub enstrophy: f64,
}

/// Everything the service knows about one job: the spec, the state
/// machine position, and the timeline the latency metrics are built
/// from. All `*_ms` stamps are milliseconds since server start.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Server-assigned id (dense, starting at 1).
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Submission stamp.
    pub submitted_ms: u64,
    /// First dispatch stamp (`None` while queued).
    pub started_ms: Option<u64>,
    /// Terminal stamp (`None` until completed/failed/canceled).
    pub finished_ms: Option<u64>,
    /// Accumulated time spent waiting in the queue (across requeues).
    pub queue_wait_ms: u64,
    /// Accumulated time spent running (across preemption epochs).
    pub run_ms: u64,
    /// Times the scheduler preempted this job.
    pub preemptions: u64,
    /// Gang size of each dispatch, in order (elastic resumes may
    /// shrink).
    pub ranks_history: Vec<usize>,
    /// Steps completed so far (monotone across preemptions).
    pub steps_done: usize,
    /// Final result when completed.
    pub result: Option<JobResult>,
    /// Critical-path summary when the spec asked for profiling.
    pub critical_path: Option<String>,
    /// Failure message when `Failed`.
    pub error: Option<String>,
}

impl JobRecord {
    /// A fresh record for a just-admitted spec.
    pub fn new(id: u64, spec: JobSpec, submitted_ms: u64) -> Self {
        JobRecord {
            id,
            spec,
            state: JobState::Queued,
            submitted_ms,
            started_ms: None,
            finished_ms: None,
            queue_wait_ms: 0,
            run_ms: 0,
            preemptions: 0,
            ranks_history: Vec::new(),
            steps_done: 0,
            result: None,
            critical_path: None,
            error: None,
        }
    }

    /// End-to-end latency (submit → terminal), when terminal.
    pub fn latency_ms(&self) -> Option<u64> {
        self.finished_ms.map(|f| f.saturating_sub(self.submitted_ms))
    }

    /// One-line summary object for `GET /jobs`.
    pub fn summary_json(&self) -> Value {
        Value::Object(vec![
            ("id".into(), Value::UInt(self.id)),
            ("name".into(), Value::Str(self.spec.name.clone())),
            ("state".into(), Value::Str(self.state.name().into())),
            ("priority".into(), Value::UInt(self.spec.priority as u64)),
            ("ranks".into(), Value::UInt(self.spec.ranks as u64)),
            ("steps_done".into(), Value::UInt(self.steps_done as u64)),
            ("preemptions".into(), Value::UInt(self.preemptions)),
            ("queue_wait_ms".into(), Value::UInt(self.queue_wait_ms)),
            ("run_ms".into(), Value::UInt(self.run_ms)),
            ("latency_ms".into(), self.latency_ms().to_json()),
        ])
    }

    /// Full record object for `GET /jobs/{id}`.
    pub fn detail_json(&self) -> Value {
        let timeline = Value::Object(vec![
            ("submitted_ms".into(), Value::UInt(self.submitted_ms)),
            ("started_ms".into(), self.started_ms.to_json()),
            ("finished_ms".into(), self.finished_ms.to_json()),
            ("queue_wait_ms".into(), Value::UInt(self.queue_wait_ms)),
            ("run_ms".into(), Value::UInt(self.run_ms)),
            ("latency_ms".into(), self.latency_ms().to_json()),
        ]);
        let result = match &self.result {
            Some(r) => Value::Object(vec![
                ("steps".into(), Value::UInt(r.steps as u64)),
                ("amplitude".into(), Value::Float(r.amplitude)),
                ("enstrophy".into(), Value::Float(r.enstrophy)),
            ]),
            None => Value::Null,
        };
        Value::Object(vec![
            ("id".into(), Value::UInt(self.id)),
            ("name".into(), Value::Str(self.spec.name.clone())),
            ("state".into(), Value::Str(self.state.name().into())),
            ("spec".into(), self.spec.to_json()),
            ("timeline".into(), timeline),
            (
                "ranks_history".into(),
                Value::Array(
                    self.ranks_history
                        .iter()
                        .map(|&r| Value::UInt(r as u64))
                        .collect(),
                ),
            ),
            ("preemptions".into(), Value::UInt(self.preemptions)),
            ("steps_done".into(), Value::UInt(self.steps_done as u64)),
            ("result".into(), result),
            ("critical_path".into(), self.critical_path.to_json()),
            ("error".into(), self.error.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_json::from_str;

    #[test]
    fn spec_defaults_fill_absent_fields() {
        let s: JobSpec = from_str(r#"{"ranks": 4}"#).unwrap();
        assert_eq!(s.ranks, 4);
        assert_eq!(s.order, "low");
        assert_eq!(s.deck, "multimode");
        assert_eq!(s.min_ranks, 1);
        assert_eq!(s.priority, 4);
        assert!(!s.profile);
        s.validate(&JobLimits::default()).unwrap();
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let s = JobSpec {
            name: "big".into(),
            order: "medium".into(),
            ranks: 4,
            min_ranks: 2,
            priority: 7,
            deadline_ms: Some(2_000),
            checkpoint_every: 2,
            dt: Some(5e-4),
            ..JobSpec::default()
        };
        let back: JobSpec = from_str(&beatnik_json::to_string(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn validation_rejects_each_bad_field() {
        let limits = JobLimits::default();
        let ok = JobSpec::default();
        ok.validate(&limits).unwrap();
        let cases: Vec<(JobSpec, &str)> = vec![
            (JobSpec { order: "ultra".into(), ..ok.clone() }, "unknown order"),
            (JobSpec { deck: "cube".into(), ..ok.clone() }, "unknown deck"),
            (JobSpec { transport: "pigeon".into(), ..ok.clone() }, "unknown transport"),
            (JobSpec { mesh_n: 4096, ..ok.clone() }, "exceeds limit"),
            (JobSpec { mesh_n: 2, ..ok.clone() }, "below minimum"),
            (JobSpec { steps: 0, ..ok.clone() }, "steps must be"),
            (JobSpec { ranks: 0, ..ok.clone() }, "ranks must be"),
            (JobSpec { ranks: 2, min_ranks: 3, ..ok.clone() }, "min_ranks"),
            (JobSpec { ranks: 99, min_ranks: 99, ..ok.clone() }, "never fit"),
            (JobSpec { priority: 10, ..ok.clone() }, "priority"),
            (JobSpec { dt: Some(-1.0), ..ok.clone() }, "dt"),
            (JobSpec { faults: Some("explode:r1@step1".into()), ..ok.clone() }, "fault plan"),
        ];
        for (spec, needle) in cases {
            let err = spec.validate(&limits).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn state_machine_names_and_codes_are_stable() {
        // The wire names and gauge codes are API: loadgen and the
        // OpenMetrics consumers both parse them.
        let all = [
            JobState::Queued,
            JobState::Running,
            JobState::Preempted,
            JobState::Completed,
            JobState::Failed,
            JobState::Canceled,
        ];
        let names: Vec<_> = all.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["queued", "running", "preempted", "completed", "failed", "canceled"]
        );
        for (i, s) in all.iter().enumerate() {
            assert_eq!(s.code(), i as u64);
        }
        assert!(JobState::Completed.is_terminal());
        assert!(!JobState::Preempted.is_terminal());
    }

    #[test]
    fn record_json_shapes() {
        let mut rec = JobRecord::new(3, JobSpec::default(), 100);
        rec.state = JobState::Completed;
        rec.finished_ms = Some(600);
        rec.result = Some(JobResult {
            steps: 4,
            amplitude: 0.25,
            enstrophy: 1.5,
        });
        let summary = rec.summary_json();
        assert_eq!(summary.get("latency_ms").and_then(Value::as_u64), Some(500));
        let detail = rec.detail_json();
        assert_eq!(
            detail
                .get("result")
                .and_then(|r| r.get("steps"))
                .and_then(Value::as_u64),
            Some(4)
        );
        assert_eq!(
            detail.get("state").and_then(Value::as_str),
            Some("completed")
        );
    }
}
