//! Smoke-checker for `rocketrig --profile` output, used by
//! `scripts/verify.sh`: parses a Chrome Trace Event JSON file and
//! asserts it contains complete spans for each required name.
//!
//! Usage: `profile_check <trace.json> [required-span-name]...`
//! Exits 0 if the file parses, `traceEvents` is a non-empty array, and
//! every required name appears among the `"ph":"X"` events; exits 1
//! with a message otherwise.

use std::collections::BTreeSet;

fn fail(msg: &str) -> ! {
    eprintln!("profile_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        fail("usage: profile_check <trace.json> [required-span-name]...");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    };
    let v = match beatnik_json::parse(&text) {
        Ok(v) => v,
        Err(e) => fail(&format!("{path} is not valid JSON: {e}")),
    };
    let Some(beatnik_json::Value::Array(events)) = v.get("traceEvents") else {
        fail(&format!("{path}: traceEvents is missing or not an array"));
    };
    if events.is_empty() {
        fail(&format!("{path}: traceEvents is empty"));
    }

    let names: BTreeSet<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    let missing: Vec<&str> = args[1..]
        .iter()
        .map(String::as_str)
        .filter(|want| !names.contains(want))
        .collect();
    if !missing.is_empty() {
        fail(&format!(
            "{path}: missing required spans {missing:?}; present: {names:?}"
        ));
    }
    println!(
        "profile_check: {path} ok ({} events, {} distinct span names)",
        events.len(),
        names.len()
    );
}
