//! Ablation: the medium-order model with the cutoff solver — the
//! comparison the paper's §6 explicitly wants: "we would like to examine
//! both the performance and accuracy of the medium-order model when used
//! with the cutoff solver" against the high-order model.
//!
//! Real measurement on thread-ranks: the same periodic single-mode RT
//! problem solved at all three orders (low = FFT only; medium = cutoff BR
//! velocity + spectral vorticity; high = cutoff BR velocity + stencil
//! vorticity), reporting wall time, measured growth rate vs linear
//! theory, and the communication profile each order generates.

use beatnik_comm::{OpKind, World};
use beatnik_core::solver::BrChoice;
use beatnik_core::{Diagnostics, InitialCondition, Order, Params, Solver, SolverConfig};
use beatnik_dfft::FftConfig;
use beatnik_mesh::{BoundaryCondition, SurfaceMesh};
use std::f64::consts::PI;

const L: f64 = 2.0 * PI;
const N: usize = 32;
const STEPS: usize = 420;
const RANKS: usize = 4;

fn run(order: Order) -> (f64, f64, u64, u64) {
    let params = Params {
        atwood: 0.5,
        gravity: 2.0,
        mu: 0.0,
        epsilon: 0.13,
        cutoff: 2.5, // moderate cutoff: sees several wavelengths
        dt: 5e-3,
        ..Params::default()
    };
    let start = std::time::Instant::now();
    let (out, trace) = World::builder(RANKS).run_traced(move |comm| {
        let mesh = SurfaceMesh::new(&comm, [N, N], [true, true], 2, [0.0, 0.0], [L, L]);
        let bc = BoundaryCondition::Periodic { periods: [L, L] };
        let br = if order.needs_br_solver() {
            BrChoice::Cutoff {
                bounds: ([-1.0, -1.0, -3.0], [L + 1.0, L + 1.0, 3.0]),
            }
        } else {
            BrChoice::None
        };
        let cfg = SolverConfig {
            order,
            br,
            params,
            fft: FftConfig::default(),
            ic: InitialCondition::SingleMode {
                amplitude: 1e-5,
                modes: [1.0, 1.0],
            },
        };
        let mut solver = Solver::new(mesh, bc, cfg);
        let mut series = Vec::new();
        solver.run(STEPS, |step, pm| {
            series.push((step as f64 * params.dt, Diagnostics::compute(pm).amplitude));
        });
        series
    });
    let wall = start.elapsed().as_secs_f64();
    // Late-window growth-rate fit (the cosh solution approaches pure
    // exponential once sigma*t >> 1).
    let series = &out[0];
    let half = &series[3 * series.len() / 4..];
    let n = half.len() as f64;
    let sx: f64 = half.iter().map(|p| p.0).sum();
    let sy: f64 = half.iter().map(|p| p.1.ln()).sum();
    let sxx: f64 = half.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = half.iter().map(|p| p.0 * p.1.ln()).sum();
    let sigma = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let fft_bytes = trace.total(OpKind::Alltoallv).bytes;
    let msgs = trace.total(OpKind::Alltoallv).messages + trace.total(OpKind::Send).messages;
    (wall, sigma, fft_bytes, msgs)
}

fn main() {
    let theory = (0.5 * 2.0 * (2.0f64).sqrt()).sqrt();
    println!("=== Ablation: model order with the cutoff solver ({N}x{N}, {RANKS} ranks, {STEPS} steps) ===\n");
    println!("linear-theory growth rate sigma = {theory:.4}\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "order", "wall (s)", "sigma", "vs theory", "a2av bytes", "messages"
    );
    for order in [Order::Low, Order::Medium, Order::High] {
        let (wall, sigma, bytes, msgs) = run(order);
        println!(
            "{:>8} {:>12.3} {:>12.4} {:>12.3} {:>14} {:>12}",
            order.to_string(),
            wall,
            sigma,
            sigma / theory,
            bytes,
            msgs
        );
    }
    println!(
        "\nshape check: medium order pays both communication patterns (FFT reshapes \
         *and* cutoff migration) but inherits spectral vorticity accuracy; high order \
         swaps the FFT volume for halo-only stencils; the paper notes medium also \
         admits larger timesteps, compounding its advantage."
    );
}
