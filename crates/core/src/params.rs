//! Physical and numerical model parameters (the knobs Beatnik's
//! rocketrig driver exposes).


use beatnik_json::impl_json_struct;

/// Z-Model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Atwood number `A = (ρ₁ − ρ₂)/(ρ₁ + ρ₂)`; positive means the
    /// configuration is Rayleigh–Taylor unstable under `gravity`.
    pub atwood: f64,
    /// Gravitational acceleration magnitude (acts along −z).
    pub gravity: f64,
    /// Artificial-viscosity coefficient `μ` applied to the vorticity
    /// Laplacian (stabilizes the sheet; Beatnik's `--mu`).
    pub mu: f64,
    /// Krasny desingularization parameter `ε` of the Birkhoff–Rott
    /// kernel (Beatnik's `--epsilon`).
    pub epsilon: f64,
    /// Cutoff distance of the cutoff BR solver (Beatnik's
    /// `--cutoff-distance`).
    pub cutoff: f64,
    /// Time-step size.
    pub dt: f64,
    /// Apply the Krasny spectral filter every this many steps
    /// (0 = never). Requires an FFT-capable (periodic) model order.
    pub filter_every: usize,
    /// Krasny filter tolerance: Fourier modes of the perturbation fields
    /// with amplitude below this are zeroed (suppresses the roundoff-seeded
    /// short-wavelength instability classic to vortex-sheet methods).
    pub filter_tolerance: f64,
}

impl_json_struct!(Params {
    atwood,
    gravity,
    mu,
    epsilon,
    cutoff,
    dt,
    filter_every,
    filter_tolerance,
});

impl Default for Params {
    fn default() -> Self {
        Params {
            atwood: 0.5,
            gravity: 9.8,
            mu: 1.0,
            epsilon: 0.25,
            cutoff: 0.5,
            dt: 1e-3,
            filter_every: 0,
            filter_tolerance: 1e-12,
        }
    }
}

impl Params {
    /// Validate physical sanity; called by the solver at startup.
    pub fn validate(&self) -> Result<(), String> {
        if !(-1.0..=1.0).contains(&self.atwood) {
            return Err(format!("atwood number {} outside [-1, 1]", self.atwood));
        }
        if self.epsilon <= 0.0 {
            return Err("epsilon must be positive (desingularization)".into());
        }
        if self.cutoff <= 0.0 {
            return Err("cutoff must be positive".into());
        }
        if self.dt <= 0.0 {
            return Err("dt must be positive".into());
        }
        if self.mu < 0.0 {
            return Err("mu must be non-negative".into());
        }
        if self.filter_tolerance < 0.0 {
            return Err("filter tolerance must be non-negative".into());
        }
        Ok(())
    }

    /// The linear RT growth rate `σ = √(A·g·k)` for wavenumber `k`
    /// predicted by the model's linearization (used by tests and by CFL
    /// heuristics).
    pub fn growth_rate(&self, k: f64) -> f64 {
        (self.atwood * self.gravity * k).max(0.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_validate() {
        assert!(Params::default().validate().is_ok());
    }

    #[test]
    fn invalid_params_are_rejected() {
        let p = Params { atwood: 1.5, ..Params::default() };
        assert!(p.validate().is_err());
        let p = Params { epsilon: 0.0, ..Params::default() };
        assert!(p.validate().is_err());
        let p = Params { dt: -1.0, ..Params::default() };
        assert!(p.validate().is_err());
        let p = Params { mu: -0.1, ..Params::default() };
        assert!(p.validate().is_err());
        let p = Params { cutoff: 0.0, ..Params::default() };
        assert!(p.validate().is_err());
    }

    #[test]
    fn growth_rate_formula() {
        let p = Params {
            atwood: 0.5,
            gravity: 2.0,
            ..Params::default()
        };
        assert!((p.growth_rate(1.0) - 1.0).abs() < 1e-12);
        assert!((p.growth_rate(4.0) - 2.0).abs() < 1e-12);
        // Stable stratification has zero growth.
        let s = Params {
            atwood: -0.5,
            ..p
        };
        assert_eq!(s.growth_rate(1.0), 0.0);
    }
}
