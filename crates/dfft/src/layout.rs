//! Index distributions, rectangle helpers, and the cache-blocked
//! pack/gather kernels for data redistribution.
//!
//! The reshape engine ([`crate::redistribute`]) and the column-FFT
//! driver both reduce to strided rectangle copies. The kernels here are
//! written to be stride-aware rather than element-wise: row runs move
//! as single `memcpy`s (collapsing to ONE memcpy when the sub-rectangle
//! spans every column of its parent), and column gathers are tiled so
//! each cache line of the row-major source is fetched once per tile of
//! columns instead of once per column.

use std::ops::Range;

/// Balanced block distribution of `n` indices over `parts` owners:
/// owner `i` holds `[⌊n·i/parts⌋, ⌊n·(i+1)/parts⌋)`, so part sizes differ
/// by at most one and concatenate to `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dist {
    /// Total index count.
    pub n: usize,
    /// Number of owners.
    pub parts: usize,
}

impl Dist {
    /// Create a distribution (requires at least one part).
    pub fn new(n: usize, parts: usize) -> Self {
        assert!(parts > 0, "distribution needs at least one part");
        Dist { n, parts }
    }

    /// The index range owned by `part`.
    pub fn range(&self, part: usize) -> Range<usize> {
        assert!(part < self.parts, "part {part} out of {}", self.parts);
        (self.n * part) / self.parts..(self.n * (part + 1)) / self.parts
    }

    /// Number of indices owned by `part`.
    pub fn len(&self, part: usize) -> usize {
        self.range(part).len()
    }

    /// Whether `part` owns nothing.
    pub fn is_empty(&self, part: usize) -> bool {
        self.len(part) == 0
    }

    /// The owner of global index `i`.
    pub fn owner(&self, i: usize) -> usize {
        assert!(i < self.n, "index {i} out of {}", self.n);
        // With the floor-based split, owner = ⌈(i+1)·parts/n⌉ − 1; guard
        // rounding with a local scan.
        let mut guess = (i * self.parts) / self.n.max(1);
        while !self.range(guess).contains(&i) {
            if self.range(guess).start > i {
                guess -= 1;
            } else {
                guess += 1;
            }
        }
        guess
    }
}

/// A half-open rectangle of global (row, col) index space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rect {
    /// Global row range.
    pub rows: Range<usize>,
    /// Global column range.
    pub cols: Range<usize>,
}

impl Rect {
    /// Construct from ranges.
    pub fn new(rows: Range<usize>, cols: Range<usize>) -> Self {
        Rect { rows, cols }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols.len()
    }

    /// Total element count.
    pub fn area(&self) -> usize {
        self.nrows() * self.ncols()
    }

    /// Whether the rectangle holds no elements.
    pub fn is_empty(&self) -> bool {
        self.area() == 0
    }

    /// Intersection with another rectangle (possibly empty).
    pub fn intersect(&self, other: &Rect) -> Rect {
        let rs = self.rows.start.max(other.rows.start);
        let re = self.rows.end.min(other.rows.end).max(rs);
        let cs = self.cols.start.max(other.cols.start);
        let ce = self.cols.end.min(other.cols.end).max(cs);
        Rect::new(rs..re, cs..ce)
    }

    /// Row-major offset of global `(r, c)` within a buffer laid out as
    /// this rectangle.
    #[inline]
    pub fn offset(&self, r: usize, c: usize) -> usize {
        debug_assert!(self.rows.contains(&r) && self.cols.contains(&c));
        (r - self.rows.start) * self.ncols() + (c - self.cols.start)
    }
}

/// Copy the sub-rectangle `sub` out of a row-major buffer laid out as
/// `from`, producing a row-major `sub`-shaped vector.
///
/// Stride-aware: each row run is one `memcpy`, and a full-width `sub`
/// (every column of `from`, the common case for slab reshapes) is a
/// single contiguous `memcpy` of the whole region.
pub fn pack<T: Copy + Default>(buf: &[T], from: &Rect, sub: &Rect) -> Vec<T> {
    debug_assert_eq!(buf.len(), from.area());
    if sub.ncols() == from.ncols() && !sub.is_empty() {
        let start = from.offset(sub.rows.start, sub.cols.start);
        return buf[start..start + sub.area()].to_vec();
    }
    let mut out = Vec::with_capacity(sub.area());
    for r in sub.rows.clone() {
        let start = from.offset(r, sub.cols.start);
        out.extend_from_slice(&buf[start..start + sub.ncols()]);
    }
    out
}

/// Write a row-major `sub`-shaped vector into a row-major buffer laid out
/// as `into`. Single-`memcpy` fast path for full-width `sub`, like
/// [`pack`].
pub fn unpack<T: Copy>(buf: &mut [T], into: &Rect, sub: &Rect, data: &[T]) {
    debug_assert_eq!(buf.len(), into.area());
    debug_assert_eq!(data.len(), sub.area());
    if sub.ncols() == into.ncols() && !sub.is_empty() {
        let start = into.offset(sub.rows.start, sub.cols.start);
        buf[start..start + sub.area()].copy_from_slice(data);
        return;
    }
    for (i, r) in sub.rows.clone().enumerate() {
        let dst = into.offset(r, sub.cols.start);
        let src = i * sub.ncols();
        buf[dst..dst + sub.ncols()].copy_from_slice(&data[src..src + sub.ncols()]);
    }
}

/// Column-tile width (elements) for [`gather_cols`]/[`scatter_cols`]:
/// wide enough that every cache line a source row segment touches is
/// fully consumed for all of the tile's columns in one fetch, narrow
/// enough that the tile's write streams stay cache-resident.
pub const COL_TILE: usize = 16;

/// Blocked transpose-gather: copy columns `[c0, c0 + cols)` of a
/// row-major `nrows × ncols` buffer into `out`, column-major (each
/// gathered column contiguous with length `nrows`).
///
/// Streaming over rows with a *tile* of columns is what makes this
/// cache-blocked: one pass reads each source cache line once for all
/// `cols` columns, where a column-at-a-time gather re-fetches every
/// line once per column. Callers tile with [`COL_TILE`].
pub fn gather_cols<T: Copy>(buf: &[T], ncols: usize, c0: usize, cols: usize, out: &mut [T]) {
    debug_assert!(ncols > 0 && c0 + cols <= ncols);
    let nrows = buf.len() / ncols;
    debug_assert_eq!(buf.len(), nrows * ncols);
    debug_assert_eq!(out.len(), nrows * cols);
    for r in 0..nrows {
        let run = &buf[r * ncols + c0..r * ncols + c0 + cols];
        for (j, &v) in run.iter().enumerate() {
            out[j * nrows + r] = v;
        }
    }
}

/// Inverse of [`gather_cols`]: scatter `cols` contiguous columns from
/// `data` (column-major) back into columns `[c0, c0 + cols)` of the
/// row-major `buf`.
pub fn scatter_cols<T: Copy>(data: &[T], ncols: usize, c0: usize, cols: usize, buf: &mut [T]) {
    debug_assert!(ncols > 0 && c0 + cols <= ncols);
    let nrows = buf.len() / ncols;
    debug_assert_eq!(buf.len(), nrows * ncols);
    debug_assert_eq!(data.len(), nrows * cols);
    for r in 0..nrows {
        let run = &mut buf[r * ncols + c0..r * ncols + c0 + cols];
        for (j, v) in run.iter_mut().enumerate() {
            *v = data[j * nrows + r];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_partitions_exactly() {
        for (n, p) in [(10usize, 3usize), (7, 7), (5, 8), (0, 4), (1024, 32)] {
            let d = Dist::new(n, p);
            let mut covered = 0;
            for i in 0..p {
                let r = d.range(i);
                assert_eq!(r.start, covered);
                covered = r.end;
                assert!(r.len() <= n / p + 1);
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn dist_owner_is_consistent_with_range() {
        for (n, p) in [(10usize, 3usize), (7, 7), (100, 6), (9, 2)] {
            let d = Dist::new(n, p);
            for i in 0..n {
                let o = d.owner(i);
                assert!(d.range(o).contains(&i), "n={n} p={p} i={i} owner={o}");
            }
        }
    }

    #[test]
    fn rect_intersection() {
        let a = Rect::new(0..10, 0..10);
        let b = Rect::new(5..15, 8..20);
        let i = a.intersect(&b);
        assert_eq!(i, Rect::new(5..10, 8..10));
        assert_eq!(i.area(), 10);
        let disjoint = a.intersect(&Rect::new(20..30, 0..10));
        assert!(disjoint.is_empty());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let from = Rect::new(2..6, 10..15); // 4x5
        let buf: Vec<u32> = (0..20).collect();
        let sub = Rect::new(3..5, 11..14); // 2x3
        let packed = pack(&buf, &from, &sub);
        assert_eq!(packed.len(), 6);
        // Row 3 of `from` starts at offset 5; col 11 is offset 1.
        assert_eq!(packed, vec![6, 7, 8, 11, 12, 13]);
        let mut dst = vec![0u32; 20];
        unpack(&mut dst, &from, &sub, &packed);
        for r in 3..5 {
            for c in 11..14 {
                assert_eq!(dst[from.offset(r, c)], buf[from.offset(r, c)]);
            }
        }
    }

    #[test]
    fn pack_whole_rect_is_identity() {
        let r = Rect::new(0..3, 0..4);
        let buf: Vec<i64> = (0..12).collect();
        assert_eq!(pack(&buf, &r, &r), buf);
    }

    #[test]
    fn full_width_pack_matches_row_by_row() {
        // The single-memcpy fast path (sub spans every column) must
        // agree with the general strided path.
        let from = Rect::new(0..6, 3..8); // 6x5
        let buf: Vec<u32> = (0..30).collect();
        let sub = Rect::new(2..5, 3..8); // full width, rows 2..5
        let packed = pack(&buf, &from, &sub);
        assert_eq!(packed, (10..25).collect::<Vec<u32>>());
        let mut a = vec![0u32; 30];
        unpack(&mut a, &from, &sub, &packed);
        assert_eq!(&a[10..25], &buf[10..25]);
        assert!(a[..10].iter().chain(&a[25..]).all(|&v| v == 0));
    }

    #[test]
    fn gather_scatter_cols_roundtrip_all_tilings() {
        let (nrows, ncols) = (7usize, 13usize);
        let buf: Vec<u64> = (0..(nrows * ncols) as u64).collect();
        for c0 in [0usize, 3, 12] {
            for cols in [1usize, 2, 5] {
                if c0 + cols > ncols {
                    continue;
                }
                let mut tile = vec![0u64; nrows * cols];
                gather_cols(&buf, ncols, c0, cols, &mut tile);
                for j in 0..cols {
                    for r in 0..nrows {
                        assert_eq!(
                            tile[j * nrows + r],
                            buf[r * ncols + c0 + j],
                            "c0={c0} cols={cols} col {j} row {r}"
                        );
                    }
                }
                let mut back = vec![u64::MAX; nrows * ncols];
                scatter_cols(&tile, ncols, c0, cols, &mut back);
                for r in 0..nrows {
                    for c in 0..ncols {
                        let want = if (c0..c0 + cols).contains(&c) {
                            buf[r * ncols + c]
                        } else {
                            u64::MAX
                        };
                        assert_eq!(back[r * ncols + c], want);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_rejected() {
        let _ = Dist::new(4, 0);
    }
}
