//! Property-based tests of the FFT stack over arbitrary lengths and
//! signals (both the radix-2 and Bluestein paths, the 2D transform, and
//! the real-input helpers).

use beatnik_fft::dft::dft_naive;
use beatnik_fft::real::{rfft_pair, RealFft};
use beatnik_fft::{Complex, Fft, Fft2d};
use proptest::prelude::*;

fn signal(max_len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec(
        (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(re, im)| Complex::new(re, im)),
        1..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn roundtrip_identity_any_length(x in signal(300)) {
        let plan = Fft::new(x.len());
        let mut buf = x.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-7 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn unnormalized_inverse_scales_by_n(x in signal(120)) {
        let n = x.len();
        let plan = Fft::new(n);
        let mut a = x.clone();
        plan.inverse(&mut a);
        let mut b = x;
        plan.inverse_unnormalized(&mut b);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u.scale(n as f64) - *v).abs() < 1e-6 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn linearity_of_forward_transform(
        x in signal(100),
        alpha in -10.0f64..10.0,
    ) {
        let n = x.len();
        let plan = Fft::new(n);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fax: Vec<Complex> = x.iter().map(|z| z.scale(alpha)).collect();
        plan.forward(&mut fax);
        for (a, b) in fax.iter().zip(&fx) {
            prop_assert!((*a - b.scale(alpha)).abs() < 1e-6 * (1.0 + b.abs() * alpha.abs()));
        }
    }

    #[test]
    fn small_sizes_match_naive_dft(x in signal(48)) {
        let plan = Fft::new(x.len());
        let mut fast = x.clone();
        plan.forward(&mut fast);
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn fft2d_roundtrip(vals in prop::collection::vec(-1e3f64..1e3, 1..100),
                       rows in 1usize..10) {
        // Shape the flat vector into rows x cols (truncate remainder).
        let rows = rows.min(vals.len());
        let cols = vals.len() / rows;
        let data: Vec<Complex> = vals[..rows * cols]
            .iter()
            .map(|&v| Complex::real(v))
            .collect();
        let plan = Fft2d::new(rows, cols);
        let mut buf = data.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&data) {
            prop_assert!((*a - *b).abs() < 1e-7 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn real_fft_roundtrip_even_lengths(vals in prop::collection::vec(-1e3f64..1e3, 1..120)) {
        let n = (vals.len() / 2) * 2;
        prop_assume!(n >= 2);
        let x = &vals[..n];
        let plan = RealFft::new(n);
        let back = plan.inverse(&plan.forward(x));
        for (a, b) in back.iter().zip(x) {
            prop_assert!((a - b).abs() < 1e-7 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn rfft_pair_splits_correctly(vals in prop::collection::vec(-1e3f64..1e3, 2..80)) {
        let n = vals.len() / 2;
        prop_assume!(n >= 1);
        let a = &vals[..n];
        let b = &vals[n..2 * n];
        let plan = Fft::new(n);
        let (fa, fb) = rfft_pair(&plan, a, b);
        let sa = dft_naive(&a.iter().map(|&v| Complex::real(v)).collect::<Vec<_>>());
        let sb = dft_naive(&b.iter().map(|&v| Complex::real(v)).collect::<Vec<_>>());
        for k in 0..n {
            prop_assert!((fa[k] - sa[k]).abs() < 1e-6 * (1.0 + sa[k].abs()));
            prop_assert!((fb[k] - sb[k]).abs() < 1e-6 * (1.0 + sb[k].abs()));
        }
    }
}
