//! Tree-based reductions: binomial-tree reduce and recursive-doubling
//! allreduce (with a reduce+broadcast fallback for non-power-of-two
//! groups, as MPICH does).

use crate::communicator::Communicator;
use crate::error::CommError;
use crate::message::CommData;
use crate::reduce_op::ReduceOp;
use crate::trace::OpKind;
use beatnik_telemetry::CommOp;

/// Reduce a single value to `root` with a binomial tree. Non-root ranks
/// receive `None`.
pub fn reduce<T: CommData + Clone, O: ReduceOp<T>>(
    comm: &Communicator,
    root: usize,
    value: T,
    op: &O,
) -> Result<Option<T>, CommError> {
    Ok(reduce_vec(comm, root, vec![value], op)?.map(|mut v| v.pop().unwrap()))
}

/// Element-wise vector reduce to `root` with a binomial tree.
///
/// All ranks must pass equal-length vectors.
pub fn reduce_vec<T: CommData + Clone, O: ReduceOp<T>>(
    comm: &Communicator,
    root: usize,
    value: Vec<T>,
    op: &O,
) -> Result<Option<Vec<T>>, CommError> {
    comm.coll_begin(OpKind::Reduce);
    let mut span = comm.telemetry().op(CommOp::Reduce);
    span.peer(root);
    span.bytes(std::mem::size_of_val(value.as_slice()) as u64);
    comm.check_group_alive()?;
    reduce_impl(comm, root, value, op, OpKind::Reduce)
}

fn reduce_impl<T: CommData + Clone, O: ReduceOp<T>>(
    comm: &Communicator,
    root: usize,
    value: Vec<T>,
    op: &O,
    kind: OpKind,
) -> Result<Option<Vec<T>>, CommError> {
    let p = comm.size();
    let r = comm.rank();
    assert!(root < p, "reduce: root {root} out of range");
    if p == 1 {
        return Ok(Some(value));
    }
    let vrank = (r + p - root) % p;
    let mut acc = value;
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask == 0 {
            let src = vrank | mask;
            if src < p {
                let other = comm.try_coll_recv::<T>(((src) + root) % p, mask as u64, "reduce")?;
                assert_eq!(
                    other.len(),
                    acc.len(),
                    "reduce: mismatched vector lengths across ranks"
                );
                for (a, b) in acc.iter_mut().zip(other.iter()) {
                    *a = op.combine(a, b);
                }
            }
        } else {
            let dst = ((vrank & !mask) + root) % p;
            comm.coll_send(dst, mask as u64, acc, kind);
            return Ok(None);
        }
        mask <<= 1;
    }
    Ok(Some(acc))
}

/// Allreduce a single value across all ranks.
pub fn allreduce<T: CommData + Clone + Sync, O: ReduceOp<T>>(
    comm: &Communicator,
    value: T,
    op: &O,
) -> Result<T, CommError> {
    Ok(allreduce_vec(comm, vec![value], op)?.pop().unwrap())
}

/// Element-wise allreduce over equal-length vectors.
///
/// Uses recursive doubling when the group size is a power of two
/// (⌈log₂P⌉ rounds, every rank active every round); otherwise falls back
/// to a binomial reduce to rank 0 followed by a binomial broadcast.
pub fn allreduce_vec<T: CommData + Clone + Sync, O: ReduceOp<T>>(
    comm: &Communicator,
    value: Vec<T>,
    op: &O,
) -> Result<Vec<T>, CommError> {
    comm.coll_begin(OpKind::Allreduce);
    let mut span = comm.telemetry().op(CommOp::Allreduce);
    span.bytes(std::mem::size_of_val(value.as_slice()) as u64);
    comm.check_group_alive()?;
    let p = comm.size();
    if p == 1 {
        return Ok(value);
    }
    if p.is_power_of_two() {
        let r = comm.rank();
        let mut acc = value;
        let mut mask = 1usize;
        while mask < p {
            let partner = r ^ mask;
            comm.coll_send(partner, mask as u64, acc.clone(), OpKind::Allreduce);
            let other = comm.try_coll_recv::<T>(partner, mask as u64, "allreduce")?;
            assert_eq!(
                other.len(),
                acc.len(),
                "allreduce: mismatched vector lengths across ranks"
            );
            for (a, b) in acc.iter_mut().zip(other.iter()) {
                *a = op.combine(a, b);
            }
            mask <<= 1;
        }
        Ok(acc)
    } else {
        let reduced = reduce_impl(comm, 0, value, op, OpKind::Allreduce)?;
        // Broadcast the result from rank 0 on the allreduce's account.
        crate::collectives::broadcast::broadcast(comm, 0, reduced)
    }
}

#[cfg(test)]
mod tests {
    use crate::reduce_op::{FnOp, MaxOp, MinOp, SumOp};
    use crate::trace::OpKind;
    use crate::world::World;

    #[test]
    fn reduce_sum_to_each_root() {
        for p in [1usize, 2, 3, 4, 6, 8] {
            for root in [0, p - 1] {
                let out = World::builder(p).run(move |c| c.reduce(root, c.rank() as u64, &SumOp));
                let expect: u64 = (0..p as u64).sum();
                for (r, v) in out.into_iter().enumerate() {
                    if r == root {
                        assert_eq!(v, Some(expect), "p={p} root={root}");
                    } else {
                        assert_eq!(v, None);
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_vec_is_elementwise() {
        let out = World::builder(4).run(|c| {
            c.reduce_vec(0, vec![c.rank() as f64, 1.0], &SumOp)
        });
        assert_eq!(out[0], Some(vec![6.0, 4.0]));
    }

    #[test]
    fn allreduce_sum_min_max_all_sizes() {
        for p in [1usize, 2, 3, 4, 5, 7, 8, 16] {
            let out = World::builder(p).run(|c| {
                let r = c.rank() as f64;
                (c.allreduce_sum(r), c.allreduce_min(r), c.allreduce_max(r))
            });
            let expect_sum: f64 = (0..p).map(|x| x as f64).sum();
            for (s, mn, mx) in out {
                assert_eq!(s, expect_sum, "p={p}");
                assert_eq!(mn, 0.0);
                assert_eq!(mx, (p - 1) as f64);
            }
        }
    }

    #[test]
    fn allreduce_with_custom_argmax_op() {
        let out = World::builder(5).run(|c| {
            let v = (c.rank() as f64 - 2.0).abs(); // max at ranks 0 and 4
            let op = FnOp(|a: &(f64, u64), b: &(f64, u64)| {
                if (a.0, a.1) >= (b.0, b.1) {
                    *a
                } else {
                    *b
                }
            });
            c.allreduce((v, c.rank() as u64), &op)
        });
        for (v, r) in out {
            assert_eq!(v, 2.0);
            assert_eq!(r, 4); // tie broken toward larger rank by the op
        }
    }

    #[test]
    fn allreduce_vec_recursive_doubling_message_count() {
        let (_, trace) = World::builder(8).run_traced(|c| {
            let _ = c.allreduce_vec(vec![1.0f64; 4], &SumOp);
        });
        for r in 0..8 {
            let s = trace.rank(r).get(OpKind::Allreduce);
            assert_eq!(s.calls, 1);
            assert_eq!(s.messages, 3); // log2(8)
            assert_eq!(s.bytes, 3 * 32); // 4 f64 per round
        }
    }

    #[test]
    fn min_max_ops_on_integers() {
        let out = World::builder(3).run(|c| {
            let r = c.rank() as i64 - 1; // -1, 0, 1
            (c.allreduce(r, &MinOp), c.allreduce(r, &MaxOp))
        });
        for (mn, mx) in out {
            assert_eq!(mn, -1);
            assert_eq!(mx, 1);
        }
    }
}
