//! Recursive-descent JSON parser.
//!
//! Accepts the full JSON grammar (RFC 8259); rejects trailing garbage.
//! Numbers keep their lexical class: integer literals that fit `u64`
//! (non-negative) or `i64` (negative) stay integers, everything else
//! parses through `str::parse::<f64>` (correctly rounded, so floats
//! round-trip bit-exactly with the shortest-representation writer).

use crate::{JsonError, Value};

/// Parse one JSON document out of `text`.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(
                                self.err(&format!("invalid escape '\\{}'", other as char))
                            )
                        }
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::UInt(42));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(parse("4.5e2").unwrap(), Value::Float(450.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": -0.5}"#).unwrap();
        assert_eq!(v.get("c").unwrap(), &Value::Float(-0.5));
        let Value::Array(items) = v.get("a").unwrap() else {
            panic!()
        };
        assert_eq!(items[1].get("b").unwrap(), &Value::Null);
    }

    #[test]
    fn string_escapes_and_unicode() {
        let v = parse(r#""a\n\t\"\\é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\t\"\\é😀");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "tru", "\"unterminated", "1 2", "{\"a\" 1}", "nan"] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn big_u64_stays_exact() {
        let n = u64::MAX;
        assert_eq!(parse(&n.to_string()).unwrap(), Value::UInt(n));
    }
}
