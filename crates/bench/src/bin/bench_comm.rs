//! Transport microbenchmark emitting `BENCH_comm.json`.
//!
//! Times the all-to-all engines across the message-size bins the
//! adaptive selector switches on, plus the point-to-point eager,
//! rendezvous, and zero-copy ownership-transfer protocols, on real
//! thread-ranks. Each row records the
//! operation, algorithm, transport backend, size bin (shared
//! [`sizebins`] labels), ns per operation, and transport bytes *copied*
//! per operation (from the trace's copy accounting — the number the
//! rendezvous path exists to cut).
//!
//! The full algorithm sweep runs on the thread backend (the regression
//! target); a smaller sweep then repeats representative cases on the
//! shmem and tcp loopback backends so wire-path regressions land in the
//! same gate.
//!
//! Usage: `bench_comm [output.json]` (default `BENCH_comm.json`).

use beatnik_comm::{telemetry::sizebins, AllToAllAlgo, TransportKind, World};
use beatnik_json::Value;
use std::time::{Duration, Instant};

/// Generous stall limit: CI machines can oversubscribe 16 thread-ranks.
const TIMEOUT: Duration = Duration::from_secs(120);

struct Row {
    op: &'static str,
    algo: &'static str,
    transport: TransportKind,
    ranks: usize,
    bytes: usize,
    ns_per_op: f64,
    copied_per_op: f64,
}

impl Row {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("op".into(), Value::Str(self.op.into())),
            ("algo".into(), Value::Str(self.algo.into())),
            ("transport".into(), Value::Str(self.transport.name().into())),
            ("ranks".into(), Value::UInt(self.ranks as u64)),
            ("bytes".into(), Value::UInt(self.bytes as u64)),
            (
                "size_bin".into(),
                Value::Str(sizebins::label(sizebins::bucket_of(self.bytes as u64))),
            ),
            ("ns_per_op".into(), Value::Float(self.ns_per_op)),
            ("bytes_copied_per_op".into(), Value::Float(self.copied_per_op)),
        ])
    }
}

fn algo_name(algo: AllToAllAlgo) -> &'static str {
    match algo {
        AllToAllAlgo::Pairwise => "pairwise",
        AllToAllAlgo::Direct => "direct",
        AllToAllAlgo::Bruck => "bruck",
        AllToAllAlgo::Adaptive => "adaptive",
    }
}

/// Best-of-N trials: scheduler noise on an oversubscribed box only ever
/// slows a trial down, so the minimum is the honest latency estimate.
/// Trials of competing algorithms are interleaved by the caller so a
/// noisy window cannot bias one algorithm's whole sample.
const TRIALS: usize = 5;

/// One timed trial: `reps` alltoalls of `block` bytes per destination
/// over `p` ranks; returns (ns/op, copied bytes/op summed over ranks).
/// The timed region sits between barriers *inside* the world, so thread
/// spawn and join don't pollute the per-op number.
fn bench_alltoall(
    p: usize,
    block: usize,
    algo: AllToAllAlgo,
    reps: usize,
    kind: TransportKind,
) -> (f64, f64) {
    let (elapsed, trace) = World::builder(p).transport(kind).recv_timeout(TIMEOUT).run_traced(move |c| {
        let send = vec![0u8; p * block];
        c.barrier();
        let start = Instant::now();
        for _ in 0..reps {
            let _ = c.alltoall_with(&send, algo);
        }
        c.barrier();
        start.elapsed()
    });
    let slowest = elapsed.iter().max().expect("no ranks");
    (
        slowest.as_nanos() as f64 / reps as f64,
        trace.copied_bytes() as f64 / reps as f64,
    )
}

/// Time `reps` ping-pongs of a `bytes`-sized isend/irecv pair under an
/// explicit eager limit (0 forces rendezvous on every send).
fn bench_p2p(bytes: usize, eager_limit: usize, reps: usize, kind: TransportKind) -> (f64, f64) {
    let mut best_ns = f64::INFINITY;
    let mut copied = 0.0;
    for _ in 0..TRIALS {
        let (elapsed, trace) = World::builder(2).transport(kind).recv_timeout(TIMEOUT).eager_limit(eager_limit).run_traced(move |c| {
            let buf = vec![0u8; bytes];
            c.barrier();
            let start = Instant::now();
            for i in 0..reps as u64 {
                if c.rank() == 0 {
                    c.isend(1, i, &buf).wait();
                    let _ = c.irecv::<u8>(1, i).wait();
                } else {
                    let _ = c.irecv::<u8>(0, i).wait();
                    c.isend(0, i, &buf).wait();
                }
            }
            c.barrier();
            start.elapsed()
        });
        // Each rep is two messages (one each way).
        let slowest = elapsed.iter().max().expect("no ranks");
        best_ns = best_ns.min(slowest.as_nanos() as f64 / reps as f64);
        copied = trace.copied_bytes() as f64 / reps as f64;
    }
    (best_ns, copied)
}

/// Time `reps` ping-pongs of a `bytes`-sized payload moved by
/// *ownership transfer* (`isend_owned`): the same allocation bounces
/// between the ranks with zero protocol copies at any size. Returns
/// (ns/op, copied bytes/op, handoff bytes/op).
fn bench_p2p_owned(bytes: usize, reps: usize, kind: TransportKind) -> (f64, f64, f64) {
    let mut best_ns = f64::INFINITY;
    let mut copied = 0.0;
    let mut handoff = 0.0;
    for _ in 0..TRIALS {
        let (elapsed, trace) = World::builder(2).transport(kind).recv_timeout(TIMEOUT).run_traced(move |c| {
            let mut buf = vec![0u8; bytes];
            c.barrier();
            let start = Instant::now();
            for i in 0..reps as u64 {
                if c.rank() == 0 {
                    c.isend_owned(1, i, buf).wait();
                    buf = c.irecv::<u8>(1, i).wait();
                } else {
                    buf = c.irecv::<u8>(0, i).wait();
                    c.isend_owned(0, i, buf).wait();
                    buf = Vec::new();
                }
            }
            c.barrier();
            start.elapsed()
        });
        let slowest = elapsed.iter().max().expect("no ranks");
        best_ns = best_ns.min(slowest.as_nanos() as f64 / reps as f64);
        copied = trace.copied_bytes() as f64 / reps as f64;
        handoff = trace.handoff_bytes() as f64 / reps as f64;
    }
    (best_ns, copied, handoff)
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_comm.json".into());
    let mut rows: Vec<Row> = Vec::new();

    // All-to-all across the adaptive selector's regimes. 16 ranks with
    // 64-byte blocks is the latency-bound corner where Bruck's log-P
    // schedule must beat Pairwise's 15 sequential exchanges.
    let alltoall_cases: &[(usize, usize, usize)] = &[
        (16, 64, 60),      // small blocks, large world: Bruck territory
        (8, 1024, 60),     // mid-size: Direct territory
        (4, 64 * 1024, 20) // large blocks: Pairwise territory
    ];
    let algos = [
        AllToAllAlgo::Pairwise,
        AllToAllAlgo::Direct,
        AllToAllAlgo::Bruck,
        AllToAllAlgo::Adaptive,
    ];
    for &(p, block, reps) in alltoall_cases {
        // Warmup worlds (thread spawn + pool fill), then interleave
        // best-of-TRIALS measurements round-robin across the algorithms.
        for algo in algos {
            let _ = bench_alltoall(p, block, algo, 5, TransportKind::Thread);
        }
        let mut best = [(f64::INFINITY, 0.0); 4];
        for _ in 0..TRIALS {
            for (slot, &algo) in best.iter_mut().zip(&algos) {
                let (ns, copied) = bench_alltoall(p, block, algo, reps, TransportKind::Thread);
                if ns < slot.0 {
                    *slot = (ns, copied);
                }
            }
        }
        for (&(ns, copied), &algo) in best.iter().zip(&algos) {
            rows.push(Row {
                op: "alltoall",
                algo: algo_name(algo),
                transport: TransportKind::Thread,
                ranks: p,
                bytes: block,
                ns_per_op: ns,
                copied_per_op: copied,
            });
        }
    }

    // Point-to-point protocols on a 64 KiB payload: eager (2 copies)
    // vs rendezvous (1 copy), same message pattern.
    let p2p_bytes = 64 * 1024;
    for (name, limit) in [("p2p_eager", usize::MAX), ("p2p_rendezvous", 0)] {
        let _ = bench_p2p(p2p_bytes, limit, 5, TransportKind::Thread);
        let (ns, copied) = bench_p2p(p2p_bytes, limit, 50, TransportKind::Thread);
        rows.push(Row {
            op: name,
            algo: "-",
            transport: TransportKind::Thread,
            ranks: 2,
            bytes: p2p_bytes,
            ns_per_op: ns,
            copied_per_op: copied,
        });
    }

    // Ownership-transfer p2p on the same payload, on both
    // shared-address-space backends: the tentpole number. The copied
    // column must be exactly zero — the gate's bytes_floor pins it
    // there, so any copy sneaking back into the owned path fails the
    // gate rather than drifting.
    for kind in [TransportKind::Thread, TransportKind::Shmem] {
        let _ = bench_p2p_owned(p2p_bytes, 5, kind);
        let (ns, copied, handoff) = bench_p2p_owned(p2p_bytes, 50, kind);
        assert_eq!(copied, 0.0, "owned sends must not copy payload bytes");
        assert_eq!(handoff, 2.0 * p2p_bytes as f64, "handoff accounting drifted");
        rows.push(Row {
            op: "p2p_owned",
            algo: "-",
            transport: kind,
            ranks: 2,
            bytes: p2p_bytes,
            ns_per_op: ns,
            copied_per_op: copied,
        });
    }

    // Wire backends: one representative alltoall case (adaptive picks
    // the engine) plus the eager p2p ping-pong, per backend. Loopback
    // mode, so inter-rank envelopes cross real rings/sockets.
    for kind in [TransportKind::Shmem, TransportKind::Tcp] {
        let (p, block, reps) = (4, 1024, 20);
        let _ = bench_alltoall(p, block, AllToAllAlgo::Adaptive, 5, kind);
        let mut best = (f64::INFINITY, 0.0);
        for _ in 0..TRIALS {
            let (ns, copied) = bench_alltoall(p, block, AllToAllAlgo::Adaptive, reps, kind);
            if ns < best.0 {
                best = (ns, copied);
            }
        }
        rows.push(Row {
            op: "alltoall",
            algo: "adaptive",
            transport: kind,
            ranks: p,
            bytes: block,
            ns_per_op: best.0,
            copied_per_op: best.1,
        });

        let _ = bench_p2p(p2p_bytes, usize::MAX, 5, kind);
        let (ns, copied) = bench_p2p(p2p_bytes, usize::MAX, 30, kind);
        rows.push(Row {
            op: "p2p_eager",
            algo: "-",
            transport: kind,
            ranks: 2,
            bytes: p2p_bytes,
            ns_per_op: ns,
            copied_per_op: copied,
        });
    }

    for r in &rows {
        eprintln!(
            "{:<16} {:<9} {:<7} p={:<3} {:>8} B  {:>12.0} ns/op  {:>12.0} copied B/op",
            r.op, r.algo, r.transport, r.ranks, r.bytes, r.ns_per_op, r.copied_per_op
        );
    }

    let doc = Value::Object(vec![(
        "benches".into(),
        Value::Array(rows.iter().map(Row::to_value).collect()),
    )]);
    std::fs::write(&path, beatnik_json::to_string_pretty(&doc))
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    eprintln!("wrote {path}");
}
