//! Dissemination barrier.
//!
//! In round `k` every rank sends a zero-byte token to `(rank + 2^k) % P`
//! and waits for the token from `(rank − 2^k) mod P`. After ⌈log₂P⌉
//! rounds, every rank transitively depends on every other rank having
//! entered the barrier. This is the classic algorithm used by MPICH for
//! medium process counts.

use crate::communicator::Communicator;
use crate::error::CommError;
use crate::trace::OpKind;
use beatnik_telemetry::CommOp;

/// Block until all ranks of `comm` have entered, or surface a group
/// failure / revocation / deadline as a `CommError` instead of hanging.
pub fn barrier(comm: &Communicator) -> Result<(), CommError> {
    comm.coll_begin(OpKind::Barrier);
    // RAII guard: the span closes on every exit path (incl. p == 1).
    let _span = comm.telemetry().op(CommOp::Barrier);
    comm.check_group_alive()?;
    let p = comm.size();
    if p == 1 {
        return Ok(());
    }
    let r = comm.rank();
    let mut dist = 1usize;
    let mut round = 0u64;
    while dist < p {
        let dst = (r + dist) % p;
        let src = (r + p - dist) % p;
        comm.coll_send::<u8>(dst, round, Vec::new(), OpKind::Barrier);
        let _: Vec<u8> = comm.try_coll_recv(src, round, "barrier")?;
        dist *= 2;
        round += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::trace::OpKind;
    use crate::world::World;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn barrier_orders_phases() {
        // Every rank increments before the barrier; after the barrier each
        // rank must observe the full count.
        for p in [1usize, 2, 3, 4, 7, 8] {
            let counter = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&counter);
            World::builder(p).run(move |comm| {
                c2.fetch_add(1, Ordering::SeqCst);
                comm.barrier();
                assert_eq!(c2.load(Ordering::SeqCst), p);
            });
        }
    }

    #[test]
    fn barrier_message_count_is_log2() {
        let (_, trace) = World::builder(8).run_traced(|comm| {
            comm.barrier();
        });
        for r in 0..8 {
            let s = trace.rank(r).get(OpKind::Barrier);
            assert_eq!(s.calls, 1);
            assert_eq!(s.messages, 3); // log2(8) rounds
            assert_eq!(s.bytes, 0);
        }
    }

    #[test]
    fn repeated_barriers_do_not_interfere() {
        World::builder(5).run(|comm| {
            for _ in 0..20 {
                comm.barrier();
            }
        });
    }
}
