//! Balanced 2D block partitioning of the global node grid.
//!
//! (The tiny balanced-split helper is duplicated from `beatnik-dfft`'s
//! layout module on purpose: the mesh layer must not depend on the FFT
//! layer, and three lines of arithmetic do not justify a shared crate.)

use beatnik_comm::dims_create;
use std::ops::Range;

/// Balanced split of `0..n` into `parts`: part `i` is
/// `[⌊n·i/parts⌋, ⌊n·(i+1)/parts⌋)`.
pub fn split_even(n: usize, parts: usize, i: usize) -> Range<usize> {
    assert!(parts > 0 && i < parts, "split_even: bad part {i}/{parts}");
    (n * i) / parts..(n * (i + 1)) / parts
}

/// A `Pr × Pc` block partition of an `nr × nc` global node grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition2d {
    /// Rank-grid extents `[Pr, Pc]`.
    pub dims: [usize; 2],
    /// Global node counts `[nr, nc]`.
    pub global: [usize; 2],
}

impl Partition2d {
    /// Balanced partition of `global` nodes over `ranks` ranks, choosing
    /// rank-grid dims with [`dims_create`].
    pub fn balanced(global: [usize; 2], ranks: usize) -> Self {
        Partition2d {
            dims: dims_create(ranks),
            global,
        }
    }

    /// Partition with explicit rank-grid dims.
    pub fn with_dims(global: [usize; 2], dims: [usize; 2]) -> Self {
        Partition2d { dims, global }
    }

    /// Owned global row range of grid-row `pr`.
    pub fn rows_of(&self, pr: usize) -> Range<usize> {
        split_even(self.global[0], self.dims[0], pr)
    }

    /// Owned global column range of grid-col `pc`.
    pub fn cols_of(&self, pc: usize) -> Range<usize> {
        split_even(self.global[1], self.dims[1], pc)
    }

    /// Owned node count of rank `(pr, pc)`.
    pub fn count_of(&self, pr: usize, pc: usize) -> usize {
        self.rows_of(pr).len() * self.cols_of(pc).len()
    }

    /// The rank-grid coordinates owning global node `(gr, gc)`.
    pub fn owner_of(&self, gr: usize, gc: usize) -> [usize; 2] {
        let find = |n: usize, parts: usize, x: usize| -> usize {
            let mut guess = (x * parts) / n.max(1);
            loop {
                let r = split_even(n, parts, guess);
                if r.contains(&x) {
                    return guess;
                }
                if r.start > x {
                    guess -= 1;
                } else {
                    guess += 1;
                }
            }
        };
        [
            find(self.global[0], self.dims[0], gr),
            find(self.global[1], self.dims[1], gc),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_without_overlap() {
        for (n, p) in [(17usize, 4usize), (16, 4), (3, 5), (100, 7)] {
            let mut end = 0;
            for i in 0..p {
                let r = split_even(n, p, i);
                assert_eq!(r.start, end);
                end = r.end;
            }
            assert_eq!(end, n);
        }
    }

    #[test]
    fn balanced_partition_is_square_for_square_counts() {
        let p = Partition2d::balanced([512, 512], 64);
        assert_eq!(p.dims, [8, 8]);
        assert_eq!(p.rows_of(0).len(), 64);
        assert_eq!(p.count_of(3, 5), 64 * 64);
    }

    #[test]
    fn paper_strong_scaling_block_size() {
        // Paper §5.2: at 64 ranks each GPU holds a 76x76 block when strong
        // scaling a 4864-wide low-order mesh... 4864/8 = 608; the paper's
        // "76 by 76" refers to 4864/64: verify both divisions are exact.
        let p = Partition2d::balanced([4864, 4864], 64);
        assert_eq!(p.dims, [8, 8]);
        assert_eq!(p.rows_of(0).len(), 608);
        // And a 64x64 rank grid gives the paper's 76-wide sections.
        let p2 = Partition2d::with_dims([4864, 4864], [64, 64]);
        assert_eq!(p2.rows_of(0).len(), 76);
        assert_eq!(p2.cols_of(63).len(), 76);
    }

    #[test]
    fn owner_lookup_matches_ranges() {
        let p = Partition2d::with_dims([10, 7], [3, 2]);
        for gr in 0..10 {
            for gc in 0..7 {
                let [pr, pc] = p.owner_of(gr, gc);
                assert!(p.rows_of(pr).contains(&gr));
                assert!(p.cols_of(pc).contains(&gc));
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad part")]
    fn out_of_range_part_panics() {
        let _ = split_even(10, 3, 3);
    }
}
