//! Barnes–Hut tree-code Birkhoff–Rott solver — the first of the
//! "additional Birchoff-Rott solvers" the paper lists as future work
//! (§6: fast multipole and P3M far-field force solvers).
//!
//! Communication pattern: a **ring allgather** of every rank's
//! (position, strength) set — a third distinct global pattern next to the
//! exact solver's ring pass and the cutoff solver's migration cycle —
//! followed by local O(n log n) tree construction and traversal. The
//! opening angle θ trades accuracy against interaction count:
//! θ = 0 reproduces the exact solver bit-for-bit cheaper alternatives;
//! θ ≈ 0.5–0.8 is the classic tree-code operating point.
//!
//! (A distributed locally-essential-tree variant, which would avoid the
//! full gather, remains future work — as it does for the paper.)

use super::kernel::br_pair_velocity;
use super::{BrPoint, BrSolver};
use beatnik_comm::Communicator;
use beatnik_spatial::BhTree;
use crate::par::prelude::*;

/// The gather-based Barnes–Hut solver.
pub struct TreeBrSolver {
    /// Barnes–Hut opening angle (0 = exact, larger = cheaper).
    pub theta: f64,
}

impl TreeBrSolver {
    /// Create a solver with opening angle `theta`.
    pub fn new(theta: f64) -> Self {
        assert!(theta >= 0.0, "theta must be non-negative");
        TreeBrSolver { theta }
    }
}

impl BrSolver for TreeBrSolver {
    fn velocities(
        &self,
        comm: &Communicator,
        points: &[BrPoint],
        epsilon: f64,
    ) -> Vec<[f64; 3]> {
        let eps2 = epsilon * epsilon;

        // Global gather (ring allgather: P-1 rounds, full surface).
        let all: Vec<BrPoint> = comm.allgather(points);
        let positions: Vec<[f64; 3]> = all.iter().map(|p| p.pos).collect();
        let strengths: Vec<[f64; 3]> = all.iter().map(|p| p.strength).collect();

        // Local tree over the global surface, then traversal per owned
        // target (node-parallel).
        let tree = BhTree::build(positions, strengths);
        let theta = self.theta;
        points
            .par_iter()
            .map(|t| {
                tree.evaluate(t.pos, theta, &|target, src, strength| {
                    br_pair_velocity(target, src, strength, eps2)
                })
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::br::exact::ExactBrSolver;
    use beatnik_comm::{OpKind, World};

    fn global_points(n: usize) -> Vec<BrPoint> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                BrPoint {
                    pos: [
                        (t * 0.37).fract() * 4.0 - 2.0,
                        (t * 0.71).fract() * 4.0 - 2.0,
                        (t * 0.13).fract() - 0.5,
                    ],
                    strength: [(t * 0.29).fract() - 0.5, (t * 0.53).fract() - 0.5, 0.1],
                }
            })
            .collect()
    }

    #[test]
    fn theta_zero_matches_exact_solver() {
        let n = 48;
        for p in [1usize, 3] {
            World::builder(p).run(move |comm| {
                let all = global_points(n);
                let chunk = n / comm.size();
                let lo = comm.rank() * chunk;
                let hi = if comm.rank() + 1 == comm.size() { n } else { lo + chunk };
                let mine = &all[lo..hi];
                let exact = ExactBrSolver.velocities(&comm, mine, 0.1);
                let tree = TreeBrSolver::new(0.0).velocities(&comm, mine, 0.1);
                for (e, t) in exact.iter().zip(&tree) {
                    for k in 0..3 {
                        assert!((e[k] - t[k]).abs() < 1e-11, "p={p}: {e:?} vs {t:?}");
                    }
                }
            });
        }
    }

    #[test]
    fn accuracy_degrades_gracefully_with_theta() {
        World::builder(2).run(|comm| {
            let all = global_points(200);
            let mine = &all[comm.rank() * 100..comm.rank() * 100 + 100];
            let exact = ExactBrSolver.velocities(&comm, mine, 0.1);
            let rms = |theta: f64| -> f64 {
                let got = TreeBrSolver::new(theta).velocities(&comm, mine, 0.1);
                let num: f64 = got
                    .iter()
                    .zip(&exact)
                    .map(|(g, e)| (0..3).map(|k| (g[k] - e[k]).powi(2)).sum::<f64>())
                    .sum();
                let den: f64 = exact
                    .iter()
                    .map(|e| (0..3).map(|k| e[k] * e[k]).sum::<f64>())
                    .sum();
                (num / den.max(1e-300)).sqrt()
            };
            let e_tight = rms(0.3);
            let e_loose = rms(1.0);
            assert!(e_tight < 0.05, "theta=0.3 rms {e_tight}");
            assert!(e_loose < 0.5, "theta=1.0 rms {e_loose}");
            assert!(e_tight <= e_loose + 1e-12);
        });
    }

    #[test]
    fn communication_is_allgather_shaped() {
        let (_, trace) = World::builder(4).run_traced(|comm| {
            let all = global_points(40);
            let mine = &all[comm.rank() * 10..comm.rank() * 10 + 10];
            let _ = TreeBrSolver::new(0.5).velocities(&comm, mine, 0.1);
        });
        let s = trace.total(OpKind::Allgather);
        assert_eq!(s.calls, 4);
        // Ring allgather: P-1 = 3 forwarded blocks per rank.
        assert_eq!(s.messages, 12);
        // No ring-pass sends and no migration alltoallv.
        assert_eq!(trace.total(OpKind::Alltoallv).calls, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_theta_rejected() {
        let _ = TreeBrSolver::new(-0.1);
    }
}
