//! Ablation: uniform-grid vs RCB load-balanced spatial decomposition
//! under interface rollup — the paper's §6 load-balancing future work,
//! quantified on the real scaled single-mode simulation.
//!
//! Uses the same reference run as Figures 6/7, then bins the *late*
//! (rolled-up) point positions with both decompositions at several
//! region counts and reports the max/mean load factor each achieves.

use beatnik_comm::World;
use beatnik_core::diagnostics::imbalance;
use beatnik_mesh::{PointDecomposition, RcbDecomposition, SpatialMesh};
use beatnik_rocketrig::BenchCase;

fn main() {
    println!("=== Ablation: uniform grid vs RCB decomposition under rollup ===\n");
    println!("running the scaled single-mode cutoff simulation (48^2 mesh, 4 ranks)...\n");

    // Gather the late-time point positions from a real run.
    let positions: Vec<[f64; 3]> = World::builder(4).run(|comm| {
        let mut cfg = BenchCase::CutoffStrong.config(48, 200);
        cfg.params.dt = 6e-3;
        cfg.params.gravity = 20.0;
        cfg.params.mu = 0.1;
        cfg.params.epsilon = 0.15;
        cfg.params.cutoff = 1.0;
        cfg.diag_every = 0;
        let mesh = cfg.build_mesh(&comm);
        let bc = cfg.boundary_condition();
        let mut solver = beatnik_core::Solver::new(mesh, bc, cfg.solver_config());
        for _ in 0..200 {
            solver.step();
        }
        let local = solver.problem().owned_positions();
        comm.allgather(&local)
    })
    .into_iter()
    .next()
    .unwrap();

    println!("rolled-up surface: {} points\n", positions.len());
    println!(
        "{:>9} {:>18} {:>18} {:>12}",
        "regions", "uniform imbalance", "rcb imbalance", "improvement"
    );

    for regions in [16usize, 64, 256] {
        let fractions = |counts: Vec<f64>| -> Vec<f64> {
            let total: f64 = counts.iter().sum();
            counts.into_iter().map(|c| c / total).collect()
        };

        let dims = beatnik_comm::dims_create(regions);
        let uniform = SpatialMesh::new([-3.0, -3.0, -3.0], [3.0, 3.0, 3.0], dims);
        let mut uc = vec![0.0f64; regions];
        for p in &positions {
            uc[PointDecomposition::rank_of_point(&uniform, *p)] += 1.0;
        }
        let u_imb = imbalance(&fractions(uc));

        let rcb = RcbDecomposition::build(&positions, regions, [-3.0, -3.0], [3.0, 3.0]);
        let mut rc = vec![0.0f64; regions];
        for p in &positions {
            rc[rcb.rank_of_point(*p)] += 1.0;
        }
        let r_imb = imbalance(&fractions(rc));

        println!(
            "{regions:>9} {u_imb:>18.3} {r_imb:>18.3} {:>11.2}x",
            u_imb / r_imb
        );
    }

    println!(
        "\nshape check: the uniform grid's imbalance grows with region count as the \
         rollup concentrates points (the Figure-7 effect); RCB holds max/mean near 1, \
         at the cost of an extra decomposition-rebuild communication step per evaluation."
    );
}
