//! The distributed 2D surface mesh and its halo exchange.
//!
//! The surface mesh is the fundamental decomposition of Beatnik (paper
//! §2): a regular global grid of interface nodes, block-decomposed over a
//! 2D rank grid. Each rank stores its owned block plus a `halo`-wide
//! frame (width 2 in all Beatnik solvers) of copies of neighbor data.
//!
//! Halo exchange is two-phase: first along x (columns, owned rows only),
//! then along y (rows, *full local width* including the just-filled x
//! halos) — so diagonal/corner halo cells are correct without any
//! diagonal messages. This is the standard structured-grid scheme Cabana
//! uses underneath Beatnik.

use crate::field::Field;
use crate::partition::Partition2d;
use beatnik_comm::{CartComm, Communicator};
use std::ops::Range;

/// Reference-space description and decomposition of the interface mesh.
///
/// Axis convention: index `(row, col)` ↔ reference coordinates
/// `(α₂, α₁)` = `(y, x)`; fields are row-major.
pub struct SurfaceMesh {
    cart: CartComm,
    partition: Partition2d,
    periodic: [bool; 2],
    halo: usize,
    own_rows: Range<usize>,
    own_cols: Range<usize>,
    /// Reference-domain bounds: `[y_lo, x_lo]`, `[y_hi, x_hi]`.
    lo: [f64; 2],
    hi: [f64; 2],
}

impl SurfaceMesh {
    /// Create the mesh (collective over `parent`). `global` is the node
    /// count `[rows, cols]`, `periodic` per axis `[y, x]`, and
    /// `lo`/`hi` the reference-domain corners.
    ///
    /// For periodic axes the right endpoint is excluded (spacing
    /// `L/n`); for open axes nodes include both endpoints (spacing
    /// `L/(n-1)`).
    pub fn new(
        parent: &Communicator,
        global: [usize; 2],
        periodic: [bool; 2],
        halo: usize,
        lo: [f64; 2],
        hi: [f64; 2],
    ) -> Self {
        assert!(halo >= 1, "surface mesh requires a halo of at least 1");
        assert!(global[0] >= 2 * halo && global[1] >= 2 * halo, "mesh too small for halo");
        let comm = parent.duplicate();
        let partition = Partition2d::balanced(global, comm.size());
        let cart = CartComm::new(comm, partition.dims, periodic)
            .expect("surface mesh: rank grid mismatch");
        let [pr, pc] = cart.coords();
        let own_rows = partition.rows_of(pr);
        let own_cols = partition.cols_of(pc);
        SurfaceMesh {
            cart,
            partition,
            periodic,
            halo,
            own_rows,
            own_cols,
            lo,
            hi,
        }
    }

    /// The Cartesian communicator.
    pub fn cart(&self) -> &CartComm {
        &self.cart
    }

    /// The world-group communicator underlying the mesh.
    pub fn comm(&self) -> &Communicator {
        self.cart.comm()
    }

    /// The block partition.
    pub fn partition(&self) -> &Partition2d {
        &self.partition
    }

    /// Global node counts `[rows, cols]`.
    pub fn global(&self) -> [usize; 2] {
        self.partition.global
    }

    /// Per-axis periodicity `[y, x]`.
    pub fn periodic(&self) -> [bool; 2] {
        self.periodic
    }

    /// Halo width.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Owned global row range.
    pub fn own_rows(&self) -> Range<usize> {
        self.own_rows.clone()
    }

    /// Owned global column range.
    pub fn own_cols(&self) -> Range<usize> {
        self.own_cols.clone()
    }

    /// Local storage shape (owned + halo frame) `[rows, cols]`.
    pub fn local_shape(&self) -> [usize; 2] {
        [
            self.own_rows.len() + 2 * self.halo,
            self.own_cols.len() + 2 * self.halo,
        ]
    }

    /// Local index range of owned rows.
    pub fn owned_row_range(&self) -> Range<usize> {
        self.halo..self.halo + self.own_rows.len()
    }

    /// Local index range of owned columns.
    pub fn owned_col_range(&self) -> Range<usize> {
        self.halo..self.halo + self.own_cols.len()
    }

    /// Allocate a zeroed field over this mesh's local block.
    pub fn make_field(&self, ncomp: usize) -> Field {
        let [r, c] = self.local_shape();
        Field::zeros(r, c, ncomp)
    }

    /// Grid spacing `[dy, dx]` in reference space.
    pub fn spacing(&self) -> [f64; 2] {
        let [nr, nc] = self.partition.global;
        let dy = if self.periodic[0] {
            (self.hi[0] - self.lo[0]) / nr as f64
        } else {
            (self.hi[0] - self.lo[0]) / (nr - 1) as f64
        };
        let dx = if self.periodic[1] {
            (self.hi[1] - self.lo[1]) / nc as f64
        } else {
            (self.hi[1] - self.lo[1]) / (nc - 1) as f64
        };
        [dy, dx]
    }

    /// Reference-domain extents `[Ly, Lx]`.
    pub fn lengths(&self) -> [f64; 2] {
        [self.hi[0] - self.lo[0], self.hi[1] - self.lo[1]]
    }

    /// Reference coordinates `(y, x)` of a *global* node index.
    pub fn coord_of(&self, gr: i64, gc: i64) -> [f64; 2] {
        let [dy, dx] = self.spacing();
        [
            self.lo[0] + dy * gr as f64,
            self.lo[1] + dx * gc as f64,
        ]
    }

    /// Global node index of a local index (may fall outside `0..n` in
    /// halo regions; for periodic axes the *logical* index is returned
    /// unwrapped, which is what position corrections need).
    pub fn global_of(&self, lr: usize, lc: usize) -> [i64; 2] {
        [
            self.own_rows.start as i64 + lr as i64 - self.halo as i64,
            self.own_cols.start as i64 + lc as i64 - self.halo as i64,
        ]
    }

    /// Iterate owned local indices as `(lr, lc, gr, gc)`.
    pub fn owned_indices(&self) -> impl Iterator<Item = (usize, usize, usize, usize)> + '_ {
        let rr = self.owned_row_range();
        let cr = self.owned_col_range();
        rr.flat_map(move |lr| {
            let cr = cr.clone();
            cr.map(move |lc| {
                (
                    lr,
                    lc,
                    self.own_rows.start + lr - self.halo,
                    self.own_cols.start + lc - self.halo,
                )
            })
        })
    }

    /// Total owned nodes on this rank.
    pub fn owned_count(&self) -> usize {
        self.own_rows.len() * self.own_cols.len()
    }

    // ------------------------------------------------------------------
    // Halo exchange
    // ------------------------------------------------------------------

    /// Exchange halo regions of `field` with neighboring ranks. Open
    /// (non-periodic) edges are left untouched — the boundary-condition
    /// pass fills them afterwards.
    pub fn halo_exchange(&self, field: &mut Field) {
        let _phase = self.cart.comm().telemetry().phase("halo");
        let h = self.halo;
        let [lr, lc] = self.local_shape();
        assert_eq!(field.rows(), lr, "halo_exchange: field shape mismatch");
        assert_eq!(field.cols(), lc, "halo_exchange: field shape mismatch");

        // Phase 1 — x (columns, dim 1), owned rows only.
        let r0 = h;
        let r1 = lr - h;
        let (left, right) = {
            let (src, dst) = self.cart.shift(1, 1);
            (src, dst) // src = left neighbor, dst = right neighbor
        };
        // Send rightmost owned columns right; receive into left halo.
        let send_right = field.pack(r0, r1, lc - 2 * h, lc - h);
        if let Some(data) = self.exchange(right, send_right, left, 0) {
            field.unpack(r0, r1, 0, h, &data);
        }
        // Send leftmost owned columns left; receive into right halo.
        let send_left = field.pack(r0, r1, h, 2 * h);
        if let Some(data) = self.exchange(left, send_left, right, 1) {
            field.unpack(r0, r1, lc - h, lc, &data);
        }

        // Phase 2 — y (rows, dim 0), full local width (corners ride along).
        let (up, down) = {
            let (src, dst) = self.cart.shift(0, 1);
            (src, dst) // src = upper neighbor (row-1), dst = lower (row+1)
        };
        // Send bottom owned rows down; receive into top halo.
        let send_down = field.pack(lr - 2 * h, lr - h, 0, lc);
        if let Some(data) = self.exchange(down, send_down, up, 2) {
            field.unpack(0, h, 0, lc, &data);
        }
        // Send top owned rows up; receive into bottom halo.
        let send_up = field.pack(h, 2 * h, 0, lc);
        if let Some(data) = self.exchange(up, send_up, down, 3) {
            field.unpack(lr - h, lr, 0, lc, &data);
        }
    }

    /// Sendrecv helper tolerating open edges on either side.
    fn exchange(
        &self,
        dst: Option<usize>,
        send: Vec<f64>,
        src: Option<usize>,
        tag: u64,
    ) -> Option<Vec<f64>> {
        const HALO_TAG: u64 = 0x4841_4c4f; // "HALO"
        let comm = self.cart.comm();
        let tag = HALO_TAG + tag;
        match (dst, src) {
            (Some(d), Some(s)) => Some(comm.sendrecv(d, send, s, tag)),
            (Some(d), None) => {
                comm.send(d, tag, send);
                None
            }
            (None, Some(s)) => Some(comm.recv(s, tag)),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_comm::World;

    /// Fill owned cells with a recognizable function of global index.
    fn fill_owned(mesh: &SurfaceMesh, f: &mut Field) {
        for (lr, lc, gr, gc) in mesh.owned_indices() {
            f.set(lr, lc, 0, (gr * 1000 + gc) as f64);
            f.set(lr, lc, 1, -((gr * 1000 + gc) as f64));
        }
    }

    /// Check that halo cells contain the right (wrapped) global values.
    fn check_halos(mesh: &SurfaceMesh, f: &Field, check_x: bool, check_y: bool) {
        let [nr, nc] = mesh.global();
        let [lr, lc] = mesh.local_shape();
        let h = mesh.halo();
        for r in 0..lr {
            for c in 0..lc {
                let in_x_halo = c < h || c >= lc - h;
                let in_y_halo = r < h || r >= lr - h;
                if !in_x_halo && !in_y_halo {
                    continue; // owned
                }
                if in_x_halo && !check_x {
                    continue;
                }
                if in_y_halo && !check_y {
                    continue;
                }
                let [gr, gc] = mesh.global_of(r, c);
                let wr = gr.rem_euclid(nr as i64) as usize;
                let wc = gc.rem_euclid(nc as i64) as usize;
                let expect = (wr * 1000 + wc) as f64;
                assert_eq!(f.get(r, c, 0), expect, "halo mismatch at local ({r},{c})");
                assert_eq!(f.get(r, c, 1), -expect);
            }
        }
    }

    #[test]
    fn periodic_halo_exchange_all_rank_counts() {
        for p in [1usize, 2, 4, 6, 9] {
            World::builder(p).run(|comm| {
                let mesh = SurfaceMesh::new(
                    &comm,
                    [12, 12],
                    [true, true],
                    2,
                    [0.0, 0.0],
                    [1.0, 1.0],
                );
                let mut f = mesh.make_field(2);
                fill_owned(&mesh, &mut f);
                mesh.halo_exchange(&mut f);
                check_halos(&mesh, &f, true, true);
            });
        }
    }

    #[test]
    fn open_boundaries_leave_edge_halos_untouched() {
        World::builder(4).run(|comm| {
            let mesh =
                SurfaceMesh::new(&comm, [8, 8], [false, false], 2, [0.0, 0.0], [1.0, 1.0]);
            let mut f = mesh.make_field(1);
            f.fill(-1.0); // sentinel
            for (lr, lc, gr, gc) in mesh.owned_indices() {
                f.set(lr, lc, 0, (gr * 1000 + gc) as f64);
            }
            mesh.halo_exchange(&mut f);
            let [nr, nc] = mesh.global();
            let [lr, lc] = mesh.local_shape();
            let h = mesh.halo();
            for r in 0..lr {
                for c in 0..lc {
                    let [gr, gc] = mesh.global_of(r, c);
                    let owned_or_interior =
                        gr >= 0 && gr < nr as i64 && gc >= 0 && gc < nc as i64;
                    let in_halo = r < h || r >= lr - h || c < h || c >= lc - h;
                    if in_halo && owned_or_interior {
                        // Interior halo: must have neighbor data.
                        assert_eq!(f.get(r, c, 0), (gr * 1000 + gc) as f64);
                    } else if in_halo {
                        // Outside the global domain: untouched sentinel.
                        assert_eq!(f.get(r, c, 0), -1.0, "local ({r},{c})");
                    }
                }
            }
        });
    }

    #[test]
    fn mixed_periodicity() {
        World::builder(2).run(|comm| {
            let mesh =
                SurfaceMesh::new(&comm, [8, 8], [true, false], 2, [0.0, 0.0], [1.0, 1.0]);
            let mut f = mesh.make_field(2);
            f.fill(f64::NAN);
            fill_owned(&mesh, &mut f);
            mesh.halo_exchange(&mut f);
            // y halos must be valid everywhere (periodic); x edge halos
            // outside the domain stay NaN.
            let [lr, _lc] = mesh.local_shape();
            let h = mesh.halo();
            for r in 0..h {
                let [_, gc] = mesh.global_of(r, h);
                assert!(gc >= 0);
                assert!(!f.get(r, h, 0).is_nan());
                assert!(!f.get(lr - 1 - r, h, 0).is_nan());
            }
        });
    }

    #[test]
    fn spacing_and_coords() {
        World::builder(1).run(|comm| {
            let periodic =
                SurfaceMesh::new(&comm, [8, 16], [true, true], 2, [0.0, -1.0], [2.0, 1.0]);
            let [dy, dx] = periodic.spacing();
            assert!((dy - 0.25).abs() < 1e-12);
            assert!((dx - 0.125).abs() < 1e-12);
            let open =
                SurfaceMesh::new(&comm, [9, 9], [false, false], 2, [0.0, 0.0], [2.0, 2.0]);
            let [dy, dx] = open.spacing();
            assert!((dy - 0.25).abs() < 1e-12);
            assert!((dx - 0.25).abs() < 1e-12);
            let c = open.coord_of(8, 0);
            assert!((c[0] - 2.0).abs() < 1e-12);
            assert!((c[1] - 0.0).abs() < 1e-12);
        });
    }

    #[test]
    fn owned_indices_cover_partition() {
        World::builder(4).run(|comm| {
            let mesh =
                SurfaceMesh::new(&comm, [10, 10], [true, true], 2, [0.0, 0.0], [1.0, 1.0]);
            let count = mesh.owned_indices().count();
            assert_eq!(count, mesh.owned_count());
            let total = mesh.comm().allreduce_sum(count as f64) as usize;
            assert_eq!(total, 100);
        });
    }

    #[test]
    #[should_panic(expected = "halo of at least 1")]
    fn zero_halo_rejected() {
        World::builder(1).run(|comm| {
            let _ = SurfaceMesh::new(&comm, [8, 8], [true, true], 0, [0.0, 0.0], [1.0, 1.0]);
        });
    }
}
