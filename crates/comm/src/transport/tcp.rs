//! TCP socket transport: length-prefixed wire frames over one duplex
//! stream per rank pair.
//!
//! Every stream carries `u32`-length-prefixed frames from
//! [`super::wire`], written with `TCP_NODELAY` so small eager messages
//! and rendezvous handshakes do not sit in Nagle buffers. A single
//! nonblocking poller thread drains every peer stream into the local
//! registry's mailboxes, keeping per-stream byte buffers so frames
//! split across reads reassemble correctly.
//!
//! Failure detection is connection-based and feeds the existing ULFM
//! ledger: a peer that closes its stream *without* first sending a
//! `BYE` control frame is marked failed in the [`Registry`], which
//! interrupts blocked receives and lets revoke/shrink recovery run
//! across real process (or machine) boundaries. A write error toward a
//! peer marks it failed the same way — the sender observes the death
//! on its next send rather than hanging.
//!
//! Like the shmem backend, two modes share the code: **loopback**
//! (ranks are threads, both socket ends live in this process — the
//! backend test matrix path) and **per-process** (a parent/child
//! rendezvous handshake builds a full mesh: children connect to the
//! parent, learn every sibling's listen address from it, then dial
//! every lower-ranked sibling).

use super::{wire, CtrlMsg, Route, Transport, TransportKind};
use crate::message::Envelope;
use crate::registry::Registry;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long handshake accepts/dials wait before declaring the world
/// failed to assemble.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);

/// Write one length-prefixed frame, tolerating `WouldBlock` (the write
/// half shares its fd with the nonblocking poller clone).
fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(4 + frame.len());
    buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    buf.extend_from_slice(frame);
    let mut off = 0;
    while off < buf.len() {
        match stream.write(&buf[off..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => off += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::yield_now(),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Read exactly `buf.len()` bytes, spinning through `WouldBlock` until
/// `deadline`. Handshake-time helper; steady-state reads go through the
/// nonblocking poller instead.
fn read_exact_deadline(stream: &mut TcpStream, buf: &mut [u8], deadline: Instant) -> io::Result<()> {
    let mut off = 0;
    while off < buf.len() {
        if Instant::now() > deadline {
            return Err(io::ErrorKind::TimedOut.into());
        }
        match stream.read(&mut buf[off..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => off += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::yield_now(),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// One stream the poller drains: bytes from world rank `peer`.
struct Endpoint {
    stream: TcpStream,
    peer: usize,
    buf: Vec<u8>,
    open: bool,
    saw_bye: bool,
}

/// The TCP transport. See the module docs for the two modes.
pub struct TcpTransport {
    /// `(src_world, dst_world) -> write half` (clones share the fd with
    /// the poller's read half, hence the `WouldBlock`-tolerant writes).
    out: HashMap<(usize, usize), Mutex<TcpStream>>,
    /// Streams this side consumes, handed to the poller at attach.
    endpoints: Mutex<Vec<Endpoint>>,
    /// World ranks hosted by this process (all of them in loopback).
    local: Vec<usize>,
    stop: Arc<AtomicBool>,
    poller: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TcpTransport {
    fn empty(local: Vec<usize>) -> TcpTransport {
        TcpTransport {
            out: HashMap::new(),
            endpoints: Mutex::new(Vec::new()),
            local,
            stop: Arc::new(AtomicBool::new(false)),
            poller: Mutex::new(None),
        }
    }

    /// Register one duplex stream: `owner` writes into it, and bytes
    /// arriving on it come from `peer`.
    fn add_link(&mut self, owner: usize, peer: usize, stream: TcpStream) -> io::Result<()> {
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        read_half.set_nonblocking(true)?;
        self.out.insert((owner, peer), Mutex::new(stream));
        self.endpoints.lock().unwrap().push(Endpoint {
            stream: read_half,
            peer,
            buf: Vec::new(),
            open: true,
            saw_bye: false,
        });
        Ok(())
    }

    /// Build a loopback transport: all ranks are threads here, and both
    /// ends of every pair's socket live in this process.
    pub fn loopback(num_ranks: usize) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let mut me = TcpTransport::empty((0..num_ranks).collect());
        for i in 0..num_ranks {
            for j in (i + 1)..num_ranks {
                let a = TcpStream::connect(addr)?;
                let (b, _) = listener.accept()?;
                // `a` is rank i's end of the (i, j) pair, `b` is rank
                // j's: writes into `a` surface on `b` and vice versa.
                me.add_link(i, j, a)?;
                me.add_link(j, i, b)?;
            }
        }
        Ok(me)
    }

    /// Parent side of the per-process rendezvous: accept a connection
    /// from every child, learn its listen address, then broadcast the
    /// full table so children can mesh among themselves.
    pub fn parent(listener: TcpListener, num_ranks: usize) -> io::Result<TcpTransport> {
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        let mut me = TcpTransport::empty(vec![0]);
        let mut tab: HashMap<usize, String> = HashMap::new();
        let mut links: Vec<(usize, TcpStream)> = Vec::new();
        for _ in 1..num_ranks {
            let (mut stream, _) = listener.accept()?;
            let (rank, listen_addr) = read_hello(&mut stream, deadline)?;
            tab.insert(rank, listen_addr);
            links.push((rank, stream));
        }
        let table = encode_table(&tab);
        for (_, stream) in links.iter_mut() {
            write_frame(stream, &table)?;
        }
        for (rank, stream) in links {
            me.add_link(0, rank, stream)?;
        }
        Ok(me)
    }

    /// Child side of the rendezvous: dial the parent, announce our own
    /// listen address, receive the sibling table, then dial every
    /// lower-ranked sibling and accept from every higher-ranked one.
    pub fn child(parent_addr: &str, my_rank: usize, num_ranks: usize) -> io::Result<TcpTransport> {
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let mut me = TcpTransport::empty(vec![my_rank]);

        let mut parent = TcpStream::connect(parent_addr)?;
        write_hello(&mut parent, my_rank, &listener.local_addr()?.to_string())?;
        let table = decode_table(&read_one_frame(&mut parent, deadline)?)?;
        me.add_link(my_rank, 0, parent)?;

        for peer in 1..my_rank {
            let addr = table.get(&peer).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("rank {peer} not in table"))
            })?;
            let mut stream = TcpStream::connect(addr.as_str())?;
            write_hello(&mut stream, my_rank, "")?;
            me.add_link(my_rank, peer, stream)?;
        }
        for _ in (my_rank + 1)..num_ranks {
            let (mut stream, _) = listener.accept()?;
            let (rank, _) = read_hello(&mut stream, deadline)?;
            me.add_link(my_rank, rank, stream)?;
        }
        Ok(me)
    }
}

fn write_hello(stream: &mut TcpStream, rank: usize, listen_addr: &str) -> io::Result<()> {
    let mut frame = Vec::with_capacity(10 + listen_addr.len());
    frame.extend_from_slice(&(rank as u64).to_le_bytes());
    frame.extend_from_slice(&(listen_addr.len() as u16).to_le_bytes());
    frame.extend_from_slice(listen_addr.as_bytes());
    write_frame(stream, &frame)
}

fn read_hello(stream: &mut TcpStream, deadline: Instant) -> io::Result<(usize, String)> {
    let frame = read_one_frame(stream, deadline)?;
    if frame.len() < 10 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "short hello"));
    }
    let rank = u64::from_le_bytes(frame[0..8].try_into().unwrap()) as usize;
    let len = u16::from_le_bytes(frame[8..10].try_into().unwrap()) as usize;
    let addr = std::str::from_utf8(&frame[10..10 + len])
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        .to_owned();
    Ok((rank, addr))
}

fn read_one_frame(stream: &mut TcpStream, deadline: Instant) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    read_exact_deadline(stream, &mut len_bytes, deadline)?;
    let mut frame = vec![0u8; u32::from_le_bytes(len_bytes) as usize];
    read_exact_deadline(stream, &mut frame, deadline)?;
    Ok(frame)
}

fn encode_table(tab: &HashMap<usize, String>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(tab.len() as u32).to_le_bytes());
    for (rank, addr) in tab {
        out.extend_from_slice(&(*rank as u64).to_le_bytes());
        out.extend_from_slice(&(addr.len() as u16).to_le_bytes());
        out.extend_from_slice(addr.as_bytes());
    }
    out
}

fn decode_table(frame: &[u8]) -> io::Result<HashMap<usize, String>> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_owned());
    let mut tab = HashMap::new();
    if frame.len() < 4 {
        return Err(bad("short table"));
    }
    let count = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
    let mut pos = 4;
    for _ in 0..count {
        if frame.len() < pos + 10 {
            return Err(bad("truncated table entry"));
        }
        let rank = u64::from_le_bytes(frame[pos..pos + 8].try_into().unwrap()) as usize;
        let len = u16::from_le_bytes(frame[pos + 8..pos + 10].try_into().unwrap()) as usize;
        pos += 10;
        if frame.len() < pos + len {
            return Err(bad("truncated table address"));
        }
        let addr = std::str::from_utf8(&frame[pos..pos + len])
            .map_err(|_| bad("non-utf8 address"))?
            .to_owned();
        pos += len;
        tab.insert(rank, addr);
    }
    Ok(tab)
}

impl Transport for TcpTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Tcp
    }

    fn attach(&self, registry: &Arc<Registry>) {
        let registry = Arc::clone(registry);
        let mut endpoints = std::mem::take(&mut *self.endpoints.lock().unwrap());
        let stop = Arc::clone(&self.stop);
        let handle = std::thread::Builder::new()
            .name("beatnik-tcp-poller".into())
            .spawn(move || {
                let mut scratch = vec![0u8; 64 * 1024];
                let mut idle_sweeps = 0u32;
                loop {
                    let stopping = stop.load(Ordering::Acquire);
                    let mut drained = false;
                    for ep in endpoints.iter_mut() {
                        if !ep.open {
                            continue;
                        }
                        match ep.stream.read(&mut scratch) {
                            Ok(0) => {
                                ep.open = false;
                                // EOF without a BYE is a death, unless
                                // the world is tearing down anyway.
                                if !ep.saw_bye && !stopping {
                                    registry.mark_failed(ep.peer);
                                }
                            }
                            Ok(n) => {
                                drained = true;
                                ep.buf.extend_from_slice(&scratch[..n]);
                                drain_frames(ep, &registry);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(_) => {
                                ep.open = false;
                                if !ep.saw_bye && !stopping {
                                    registry.mark_failed(ep.peer);
                                }
                            }
                        }
                    }
                    if drained {
                        idle_sweeps = 0;
                        continue;
                    }
                    if stopping {
                        return;
                    }
                    idle_sweeps += 1;
                    if idle_sweeps < 256 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_micros(100));
                    }
                }
            })
            .expect("spawning the tcp poller thread");
        *self.poller.lock().unwrap() = Some(handle);
    }

    fn deliver(&self, registry: &Registry, route: Route, env: Envelope) {
        if route.src_world == route.dst_world {
            // Self-sends never cross the wire.
            registry.mailbox(route.comm, route.dst_local).push(env);
            return;
        }
        let stream = self
            .out
            .get(&(route.src_world, route.dst_world))
            .unwrap_or_else(|| {
                panic!("no tcp link for {} -> {}", route.src_world, route.dst_world)
            });
        let frame = wire::encode_data(route.comm, route.dst_local, &env);
        let result = write_frame(&mut stream.lock().unwrap(), &frame);
        if result.is_err() {
            // The peer's socket is gone: connection-based failure
            // detection. The ledger interrupt unblocks any receive
            // waiting on the dead rank.
            registry.mark_failed(route.dst_world);
        }
    }

    fn publish_ctrl(&self, ctrl: CtrlMsg) {
        // Loopback worlds share the ledger; only per-process mode (one
        // local rank) needs to broadcast.
        if self.local.len() != 1 {
            return;
        }
        let me = self.local[0];
        let frame = wire::encode_ctrl(ctrl);
        for ((src, _dst), stream) in &self.out {
            if *src == me {
                let _ = write_frame(&mut stream.lock().unwrap(), &frame);
            }
        }
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.poller.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

/// Pull every complete frame out of `ep.buf` and apply it.
fn drain_frames(ep: &mut Endpoint, registry: &Registry) {
    let mut pos = 0;
    while ep.buf.len() - pos >= 4 {
        let len = u32::from_le_bytes(ep.buf[pos..pos + 4].try_into().unwrap()) as usize;
        if ep.buf.len() - pos < 4 + len {
            break;
        }
        let frame = &ep.buf[pos + 4..pos + 4 + len];
        match wire::decode(frame) {
            Ok(wire::Frame::Ctrl(CtrlMsg::Bye(rank))) => {
                // A clean goodbye: the coming EOF is a shutdown.
                if rank == ep.peer {
                    ep.saw_bye = true;
                }
            }
            Ok(f) => wire::apply(f, registry),
            Err(e) => panic!("corrupt tcp frame from rank {}: {e}", ep.peer),
        }
        pos += 4 + len;
    }
    ep.buf.drain(..pos);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_builds_a_full_mesh() {
        let t = TcpTransport::loopback(4).unwrap();
        assert_eq!(t.out.len(), 12); // 4 * 3 ordered pairs
        assert_eq!(t.endpoints.lock().unwrap().len(), 12);
    }

    #[test]
    fn frames_cross_a_socket_and_reassemble() {
        let t = TcpTransport::loopback(2).unwrap();
        let registry = Arc::new(Registry::new());
        t.attach(&registry);
        t.deliver(
            &registry,
            Route {
                comm: 0,
                dst_local: 1,
                src_world: 0,
                dst_world: 1,
            },
            Envelope::new(0, 9, vec![2.5f64, 3.5]),
        );
        let env = registry
            .mailbox(0, 1)
            .recv_matching_timeout(1, 0, 9, Duration::from_secs(5))
            .expect("frame should arrive via the socket");
        assert_eq!(env.into_data::<f64>(), vec![2.5, 3.5]);
        t.shutdown();
    }

    #[test]
    fn rendezvous_tables_roundtrip() {
        let mut tab = HashMap::new();
        tab.insert(1, "127.0.0.1:4001".to_owned());
        tab.insert(2, "127.0.0.1:4002".to_owned());
        assert_eq!(decode_table(&encode_table(&tab)).unwrap(), tab);
        assert!(decode_table(&[1, 0]).is_err());
    }
}
