//! Aggregating rank span buffers into a world timeline and computing
//! wait-time attribution, collective skew, and the per-step dominant
//! path.

use crate::sizebins;
use crate::span::{CommOp, Span, SpanKind};
use std::collections::BTreeMap;

/// One rank's recorded spans in chronological (record) order, plus the
/// ring-overflow gauge.
#[derive(Debug, Clone)]
pub struct RankTimeline {
    pub rank: usize,
    pub spans: Vec<Span>,
    /// Spans lost to ring wrap-around on this rank.
    pub dropped: u64,
}

/// All ranks' timelines on the shared epoch clock.
#[derive(Debug, Clone)]
pub struct WorldTimeline {
    pub ranks: Vec<RankTimeline>,
}

/// Aggregated wait/compute attribution for one phase name.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    pub name: String,
    /// Phase invocations summed across ranks.
    pub calls: u64,
    /// Summed span duration across ranks (nested child phases included).
    pub total_s: f64,
    /// Summed duration excluding time inside nested phases.
    pub self_s: f64,
    /// Time blocked in receives/waits/collectives attributed to this
    /// phase (innermost enclosing phase wins), summed across ranks.
    pub wait_s: f64,
    /// `self − wait`: time the ranks actually computed in this phase.
    pub compute_s: f64,
    /// The single worst rank's wait time in this phase.
    pub max_wait_s: f64,
    pub max_wait_rank: usize,
}

/// Number of skew-histogram buckets (powers of two of nanoseconds,
/// same bucketing as [`sizebins`]).
pub const SKEW_BUCKETS: usize = sizebins::NUM_BUCKETS;

/// Histogram of collective entry or exit skews.
#[derive(Debug, Clone, Default)]
pub struct SkewHistogram {
    /// `buckets[i]` counts skews of `2^(i-1) < ns ≤ 2^i`.
    pub buckets: [u64; SKEW_BUCKETS],
    pub count: u64,
    pub sum_ns: u64,
    pub max_ns: u64,
}

impl SkewHistogram {
    fn add(&mut self, ns: u64) {
        self.buckets[sizebins::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Mean skew in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / 1000.0
        }
    }

    /// Maximum skew in microseconds.
    pub fn max_us(&self) -> f64 {
        self.max_ns as f64 / 1000.0
    }
}

/// Entry/exit skew for one collective op, over its matched occurrences.
#[derive(Debug, Clone)]
pub struct SkewRow {
    pub op: CommOp,
    /// Occurrences matched across every rank (k-th call on rank 0
    /// pairs with k-th call on every other rank — SPMD ordering).
    pub matched: usize,
    pub entry: SkewHistogram,
    pub exit: SkewHistogram,
}

/// Critical-path summary for one matched timestep.
#[derive(Debug, Clone)]
pub struct StepRow {
    pub step: usize,
    /// Slowest rank's step duration.
    pub dur_s: f64,
    /// The rank on the critical path (slowest this step).
    pub critical_rank: usize,
    /// Phase with the most self-time on the critical rank this step.
    pub dominant_phase: String,
    pub dominant_s: f64,
    /// Critical rank's blocked time within the step.
    pub wait_s: f64,
}

/// One segment of a step's bounding chain: a direct-child phase of the
/// critical rank's step span (occurrences merged by name), or the
/// `"(other)"` remainder. Segment durations sum exactly to the step
/// duration by construction.
#[derive(Debug, Clone)]
pub struct CriticalSegment {
    /// Phase name, or `"(other)"` for time outside any child phase.
    pub phase: String,
    /// Summed duration of this segment within the step (seconds).
    pub dur_s: f64,
    /// Blocked time (receives, waits, collectives) the critical rank
    /// spent inside this segment (seconds).
    pub wait_s: f64,
}

/// Critical-path decomposition of one matched timestep.
#[derive(Debug, Clone)]
pub struct CriticalStep {
    pub step: usize,
    /// The bounding (slowest) rank this step.
    pub critical_rank: usize,
    /// The bounding rank's step duration — the step's wall-clock.
    pub dur_s: f64,
    /// Bounding chain on the critical rank; `Σ dur_s` equals `dur_s`.
    pub segments: Vec<CriticalSegment>,
    /// Per-rank slack: how much earlier each rank finished the step
    /// than the critical rank (zero for the critical rank). Indexed by
    /// position in [`WorldTimeline::ranks`].
    pub slack_s: Vec<f64>,
}

/// Whole-run critical-path analysis over the matched `"step"` phases.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    pub steps: Vec<CriticalStep>,
    /// Summed step wall-clock (seconds).
    pub total_s: f64,
    /// Time each phase bounded the run (summed segment durations across
    /// steps), descending.
    pub bound_by: Vec<(String, f64)>,
    /// Mean per-rank slack across steps, indexed like
    /// [`CriticalStep::slack_s`].
    pub mean_slack_s: Vec<f64>,
}

impl CriticalPath {
    /// Human-readable report: which phases bound the run, and per-rank
    /// slack. Appended to the profile summary by the drivers.
    pub fn text(&self) -> String {
        let mut s = String::new();
        if self.steps.is_empty() {
            return s;
        }
        s.push_str(&format!(
            "-- critical path over {} steps ({:.3} ms total) --\n",
            self.steps.len(),
            self.total_s * 1e3
        ));
        s.push_str(&format!(
            "{:<22} {:>10} {:>6}\n",
            "bounding phase", "time(ms)", "share"
        ));
        for (name, secs) in &self.bound_by {
            let share = if self.total_s > 0.0 {
                100.0 * secs / self.total_s
            } else {
                0.0
            };
            s.push_str(&format!("{name:<22} {:>10.3} {share:>5.1}%\n", secs * 1e3));
        }
        s.push_str("\n-- per-rank mean slack (ms behind the critical rank) --\n");
        for (r, slack) in self.mean_slack_s.iter().enumerate() {
            s.push_str(&format!("r{r:<4} {:>10.3}\n", slack * 1e3));
        }
        s
    }
}

/// Per-span derived facts for one rank, computed in a single sweep.
struct RankAnalysis {
    /// Sorted-by-start order of span indices used by the sweep.
    order: Vec<usize>,
    /// For phase spans: duration minus nested-phase time (ns).
    self_ns: Vec<u64>,
    /// For blocking comm spans: not nested in another blocking span.
    top_level: Vec<bool>,
    /// For top-level blocking spans: index of the innermost enclosing
    /// phase span, if any.
    enclosing_phase: Vec<Option<usize>>,
    /// For phase spans: index of the parent phase span, if any.
    phase_parent: Vec<Option<usize>>,
}

fn is_blocking(span: &Span) -> bool {
    matches!(span.kind, SpanKind::Op(op) if op.is_blocking())
}

fn encloses(outer: &Span, inner: &Span) -> bool {
    outer.start_ns <= inner.start_ns && inner.end_ns <= outer.end_ns
}

fn analyze(rt: &RankTimeline) -> RankAnalysis {
    let spans = &rt.spans;
    let n = spans.len();
    let mut order: Vec<usize> = (0..n).collect();
    // Start ascending; on ties the longer (enclosing) span first.
    order.sort_by(|&a, &b| {
        spans[a]
            .start_ns
            .cmp(&spans[b].start_ns)
            .then(spans[b].end_ns.cmp(&spans[a].end_ns))
            .then(a.cmp(&b))
    });
    let mut self_ns: Vec<u64> = spans.iter().map(Span::dur_ns).collect();
    let mut top_level = vec![false; n];
    let mut enclosing_phase = vec![None; n];
    let mut phase_parent = vec![None; n];
    // Spans from one rank thread are RAII-scoped, hence properly
    // nested; a stack sweep recovers the tree.
    let mut phase_stack: Vec<usize> = Vec::new();
    let mut block_stack: Vec<usize> = Vec::new();
    for &i in &order {
        let s = &spans[i];
        while let Some(&top) = phase_stack.last() {
            if encloses(&spans[top], s) {
                break;
            }
            phase_stack.pop();
        }
        while let Some(&top) = block_stack.last() {
            if encloses(&spans[top], s) {
                break;
            }
            block_stack.pop();
        }
        match s.kind {
            SpanKind::Phase(_) => {
                if let Some(&parent) = phase_stack.last() {
                    self_ns[parent] = self_ns[parent].saturating_sub(s.dur_ns());
                    phase_parent[i] = Some(parent);
                }
                phase_stack.push(i);
            }
            SpanKind::Op(op) if op.is_blocking() => {
                if block_stack.is_empty() {
                    top_level[i] = true;
                    enclosing_phase[i] = phase_stack.last().copied();
                }
                block_stack.push(i);
            }
            SpanKind::Op(_) => {}
        }
    }
    RankAnalysis {
        order,
        self_ns,
        top_level,
        enclosing_phase,
        phase_parent,
    }
}

impl WorldTimeline {
    pub fn new(mut ranks: Vec<RankTimeline>) -> Self {
        ranks.sort_by_key(|r| r.rank);
        WorldTimeline { ranks }
    }

    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Total spans retained across all ranks.
    pub fn total_spans(&self) -> usize {
        self.ranks.iter().map(|r| r.spans.len()).sum()
    }

    /// Total spans lost to ring overflow across all ranks.
    pub fn total_dropped(&self) -> u64 {
        self.ranks.iter().map(|r| r.dropped).sum()
    }

    /// Per-phase wait/compute attribution, aggregated across ranks.
    ///
    /// A blocked interval (receive, request wait, or collective) is
    /// charged to the *innermost* phase that encloses it on that rank;
    /// blocked intervals nested inside another blocked interval (e.g.
    /// the per-request receives inside a `wait_all`) are not double
    /// counted. Phase `total` includes nested child phases, `self`
    /// excludes them, and `compute = self − wait`. Blocked time outside
    /// any phase lands in the `"(no phase)"` row.
    pub fn phase_attribution(&self) -> Vec<PhaseRow> {
        let mut rows: Vec<PhaseRow> = Vec::new();
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        let mut row = |rows: &mut Vec<PhaseRow>, name: &str| -> usize {
            *index.entry(name.to_string()).or_insert_with(|| {
                rows.push(PhaseRow {
                    name: name.to_string(),
                    calls: 0,
                    total_s: 0.0,
                    self_s: 0.0,
                    wait_s: 0.0,
                    compute_s: 0.0,
                    max_wait_s: 0.0,
                    max_wait_rank: 0,
                });
                rows.len() - 1
            })
        };
        for rt in &self.ranks {
            let a = analyze(rt);
            // Per-rank wait per phase row, to find the worst rank.
            let mut rank_wait: BTreeMap<usize, f64> = BTreeMap::new();
            for &i in &a.order {
                let s = &rt.spans[i];
                if let SpanKind::Phase(name) = s.kind {
                    let r = row(&mut rows, name);
                    rows[r].calls += 1;
                    rows[r].total_s += s.dur_s();
                    rows[r].self_s += a.self_ns[i] as f64 * 1e-9;
                }
            }
            for &i in &a.order {
                let s = &rt.spans[i];
                if !a.top_level[i] {
                    continue;
                }
                let name = match a.enclosing_phase[i] {
                    Some(p) => rt.spans[p].kind.name(),
                    None => "(no phase)",
                };
                let r = row(&mut rows, name);
                rows[r].wait_s += s.dur_s();
                *rank_wait.entry(r).or_insert(0.0) += s.dur_s();
            }
            for (r, w) in rank_wait {
                if w > rows[r].max_wait_s {
                    rows[r].max_wait_s = w;
                    rows[r].max_wait_rank = rt.rank;
                }
            }
        }
        for r in &mut rows {
            r.compute_s = (r.self_s - r.wait_s).max(0.0);
        }
        rows
    }

    /// Entry/exit skew histograms per collective op.
    ///
    /// The k-th occurrence of an op on each rank is matched against the
    /// k-th occurrence on every other rank (collectives are SPMD, so
    /// call order is identical across ranks); entry skew is the spread
    /// of start times, exit skew the spread of end times. Occurrences
    /// beyond the smallest per-rank count are left unmatched.
    pub fn collective_skew(&self) -> Vec<SkewRow> {
        if self.ranks.len() < 2 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for op in CommOp::ALL {
            if !op.is_collective() {
                continue;
            }
            let per_rank: Vec<Vec<(u64, u64)>> = self
                .ranks
                .iter()
                .map(|rt| {
                    rt.spans
                        .iter()
                        .filter(|s| s.kind == SpanKind::Op(op))
                        .map(|s| (s.start_ns, s.end_ns))
                        .collect()
                })
                .collect();
            let matched = per_rank.iter().map(Vec::len).min().unwrap_or(0);
            if matched == 0 {
                continue;
            }
            let mut entry = SkewHistogram::default();
            let mut exit = SkewHistogram::default();
            for k in 0..matched {
                let starts = per_rank.iter().map(|v| v[k].0);
                let ends = per_rank.iter().map(|v| v[k].1);
                entry.add(starts.clone().max().unwrap() - starts.min().unwrap());
                exit.add(ends.clone().max().unwrap() - ends.min().unwrap());
            }
            out.push(SkewRow {
                op,
                matched,
                entry,
                exit,
            });
        }
        out
    }

    /// Dominant-path summary per matched occurrence of `step_phase`
    /// (the solver records one `"step"` phase per timestep).
    ///
    /// For each step: the slowest rank is the critical rank; the phase
    /// with the most *self* time inside that rank's step interval is
    /// the dominant phase; `wait_s` is the critical rank's blocked
    /// time within the step.
    pub fn step_summary(&self, step_phase: &str) -> Vec<StepRow> {
        let analyses: Vec<RankAnalysis> = self.ranks.iter().map(analyze).collect();
        let steps_per_rank: Vec<Vec<usize>> = self
            .ranks
            .iter()
            .map(|rt| {
                (0..rt.spans.len())
                    .filter(|&i| matches!(rt.spans[i].kind, SpanKind::Phase(n) if n == step_phase))
                    .collect()
            })
            .collect();
        let matched = steps_per_rank.iter().map(Vec::len).min().unwrap_or(0);
        let mut out = Vec::new();
        // `k` selects the k-th step occurrence *within each rank's* index
        // list, not an element of `steps_per_rank` itself.
        #[allow(clippy::needless_range_loop)]
        for k in 0..matched {
            let (critical, &ci) = self
                .ranks
                .iter()
                .enumerate()
                .map(|(r, rt)| (r, &steps_per_rank[r][k], rt))
                .max_by_key(|(_, &i, rt)| rt.spans[i].dur_ns())
                .map(|(r, i, _)| (r, i))
                .unwrap();
            let rt = &self.ranks[critical];
            let a = &analyses[critical];
            let interval = rt.spans[ci];
            let mut by_phase: BTreeMap<&str, u64> = BTreeMap::new();
            let mut wait_ns = 0u64;
            for (i, s) in rt.spans.iter().enumerate() {
                if i == ci || !encloses(&interval, s) {
                    continue;
                }
                if let SpanKind::Phase(name) = s.kind {
                    *by_phase.entry(name).or_insert(0) += a.self_ns[i];
                }
                if a.top_level[i] && is_blocking(s) {
                    wait_ns += s.dur_ns();
                }
            }
            let (dominant, dom_ns) = by_phase
                .into_iter()
                .max_by_key(|&(_, ns)| ns)
                .unwrap_or(("(none)", 0));
            out.push(StepRow {
                step: k,
                dur_s: interval.dur_s(),
                critical_rank: rt.rank,
                dominant_phase: dominant.to_string(),
                dominant_s: dom_ns as f64 * 1e-9,
                wait_s: wait_ns as f64 * 1e-9,
            });
        }
        out
    }

    /// Critical-path decomposition over the matched occurrences of
    /// `step_phase` (see [`CriticalPath`]).
    ///
    /// Per step, the slowest rank is the *bounding* rank — wall-clock
    /// cannot beat it. Its step interval is decomposed into the
    /// direct-child phases of the step span (merged by name) plus an
    /// `"(other)"` remainder, so the segment durations sum exactly to
    /// the step duration. Every other rank's slack is how much earlier
    /// it finished: the headroom a rebalance could exploit.
    pub fn critical_path(&self, step_phase: &str) -> CriticalPath {
        let analyses: Vec<RankAnalysis> = self.ranks.iter().map(analyze).collect();
        let steps_per_rank: Vec<Vec<usize>> = self
            .ranks
            .iter()
            .map(|rt| {
                (0..rt.spans.len())
                    .filter(|&i| matches!(rt.spans[i].kind, SpanKind::Phase(n) if n == step_phase))
                    .collect()
            })
            .collect();
        let matched = steps_per_rank.iter().map(Vec::len).min().unwrap_or(0);
        let nranks = self.ranks.len();
        let mut steps = Vec::with_capacity(matched);
        let mut bound: BTreeMap<String, f64> = BTreeMap::new();
        let mut slack_sum = vec![0.0; nranks];
        let mut total_s = 0.0;
        // k indexes the k-th step occurrence on *every* rank at once.
        #[allow(clippy::needless_range_loop)]
        for k in 0..matched {
            let durs: Vec<u64> = (0..nranks)
                .map(|r| self.ranks[r].spans[steps_per_rank[r][k]].dur_ns())
                .collect();
            let critical = (0..nranks).max_by_key(|&r| durs[r]).unwrap();
            let ci = steps_per_rank[critical][k];
            let rt = &self.ranks[critical];
            let a = &analyses[critical];
            let interval = rt.spans[ci];
            // Direct-child phases of the step span, merged by name.
            let mut seg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
            let mut child_ns = 0u64;
            let mut other_wait_ns = 0u64;
            for (i, s) in rt.spans.iter().enumerate() {
                match s.kind {
                    SpanKind::Phase(name) if a.phase_parent[i] == Some(ci) => {
                        seg.entry(name).or_insert((0, 0)).0 += s.dur_ns();
                        child_ns += s.dur_ns();
                    }
                    SpanKind::Op(op) if op.is_blocking() => {
                        if !a.top_level[i] || !encloses(&interval, s) {
                            continue;
                        }
                        // Climb to the direct-child segment this blocked
                        // interval belongs to; directly-in-step blocks
                        // land in "(other)".
                        let mut p = a.enclosing_phase[i];
                        let target = loop {
                            match p {
                                None => break None,
                                Some(j) if j == ci => break None,
                                Some(j) if a.phase_parent[j] == Some(ci) => break Some(j),
                                Some(j) => p = a.phase_parent[j],
                            }
                        };
                        match target.map(|j| rt.spans[j].kind.name()) {
                            Some(name) => seg.entry(name).or_insert((0, 0)).1 += s.dur_ns(),
                            None => other_wait_ns += s.dur_ns(),
                        }
                    }
                    _ => {}
                }
            }
            let mut segments: Vec<CriticalSegment> = seg
                .into_iter()
                .map(|(name, (dur, wait))| CriticalSegment {
                    phase: name.to_string(),
                    dur_s: dur as f64 * 1e-9,
                    wait_s: wait as f64 * 1e-9,
                })
                .collect();
            let remainder = interval.dur_ns().saturating_sub(child_ns);
            if remainder > 0 || other_wait_ns > 0 {
                segments.push(CriticalSegment {
                    phase: "(other)".to_string(),
                    dur_s: remainder as f64 * 1e-9,
                    wait_s: other_wait_ns as f64 * 1e-9,
                });
            }
            segments.sort_by(|x, y| y.dur_s.total_cmp(&x.dur_s));
            for s in &segments {
                *bound.entry(s.phase.clone()).or_insert(0.0) += s.dur_s;
            }
            let dur_s = interval.dur_s();
            total_s += dur_s;
            let slack_s: Vec<f64> = durs
                .iter()
                .map(|&d| (durs[critical] - d) as f64 * 1e-9)
                .collect();
            for (acc, s) in slack_sum.iter_mut().zip(&slack_s) {
                *acc += s;
            }
            steps.push(CriticalStep {
                step: k,
                critical_rank: rt.rank,
                dur_s,
                segments,
                slack_s,
            });
        }
        let mut bound_by: Vec<(String, f64)> = bound.into_iter().collect();
        bound_by.sort_by(|x, y| y.1.total_cmp(&x.1));
        let mean_slack_s = slack_sum
            .into_iter()
            .map(|s| if matched > 0 { s / matched as f64 } else { 0.0 })
            .collect();
        CriticalPath {
            steps,
            total_s,
            bound_by,
            mean_slack_s,
        }
    }

    /// Multi-section human-readable report: phase attribution,
    /// collective skew, and the dominant path per `"step"`.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let p = self.num_ranks();
        s.push_str(&format!(
            "== telemetry: {} spans on {} ranks ({} dropped) ==\n",
            self.total_spans(),
            p,
            self.total_dropped()
        ));
        s.push_str("\n-- phase wait-time attribution (seconds, summed over ranks) --\n");
        s.push_str(&format!(
            "{:<22} {:>7} {:>10} {:>10} {:>10} {:>10} {:>6}  worst-rank\n",
            "phase", "calls", "total", "self", "wait", "compute", "wait%"
        ));
        for r in self.phase_attribution() {
            let pct = if r.self_s > 0.0 {
                100.0 * r.wait_s / r.self_s
            } else {
                0.0
            };
            s.push_str(&format!(
                "{:<22} {:>7} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>5.1}%  {:.4}s @ r{}\n",
                r.name,
                r.calls,
                r.total_s,
                r.self_s,
                r.wait_s,
                r.compute_s,
                pct,
                r.max_wait_s,
                r.max_wait_rank
            ));
        }
        let skew = self.collective_skew();
        if !skew.is_empty() {
            s.push_str("\n-- collective entry/exit skew (µs across ranks) --\n");
            s.push_str(&format!(
                "{:<16} {:>7} {:>11} {:>11} {:>11} {:>11}\n",
                "op", "matched", "entry-mean", "entry-max", "exit-mean", "exit-max"
            ));
            for r in skew {
                s.push_str(&format!(
                    "{:<16} {:>7} {:>11.2} {:>11.2} {:>11.2} {:>11.2}\n",
                    r.op.name(),
                    r.matched,
                    r.entry.mean_us(),
                    r.entry.max_us(),
                    r.exit.mean_us(),
                    r.exit.max_us()
                ));
            }
        }
        let steps = self.step_summary("step");
        if !steps.is_empty() {
            s.push_str("\n-- dominant path per timestep --\n");
            s.push_str(&format!(
                "{:<6} {:>10} {:>9} {:<22} {:>10} {:>6}\n",
                "step", "dur(ms)", "critical", "dominant-phase", "wait(ms)", "wait%"
            ));
            for r in steps {
                let pct = if r.dur_s > 0.0 {
                    100.0 * r.wait_s / r.dur_s
                } else {
                    0.0
                };
                s.push_str(&format!(
                    "{:<6} {:>10.3} {:>9} {:<22} {:>10.3} {:>5.1}%\n",
                    r.step,
                    r.dur_s * 1e3,
                    format!("r{}", r.critical_rank),
                    r.dominant_phase,
                    r.wait_s * 1e3,
                    pct
                ));
            }
        }
        let cp = self.critical_path("step");
        if !cp.steps.is_empty() {
            s.push('\n');
            s.push_str(&cp.text());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(name: &'static str, start: u64, end: u64) -> Span {
        Span {
            kind: SpanKind::Phase(name),
            start_ns: start,
            end_ns: end,
            ..Span::default()
        }
    }

    fn op(op: CommOp, start: u64, end: u64) -> Span {
        Span {
            kind: SpanKind::Op(op),
            start_ns: start,
            end_ns: end,
            ..Span::default()
        }
    }

    fn tl(ranks: Vec<Vec<Span>>) -> WorldTimeline {
        WorldTimeline::new(
            ranks
                .into_iter()
                .enumerate()
                .map(|(rank, spans)| RankTimeline {
                    rank,
                    spans,
                    dropped: 0,
                })
                .collect(),
        )
    }

    #[test]
    fn wait_goes_to_innermost_phase_and_self_excludes_children() {
        // step [0,100] contains halo [10,40]; a recv [15,35] inside
        // halo and another [50,70] directly inside step.
        let w = tl(vec![vec![
            op(CommOp::Recv, 15, 35),
            phase("halo", 10, 40),
            op(CommOp::Recv, 50, 70),
            phase("step", 0, 100),
        ]]);
        let rows = w.phase_attribution();
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        let step = get("step");
        let halo = get("halo");
        assert!((step.total_s - 100e-9).abs() < 1e-15);
        assert!((step.self_s - 70e-9).abs() < 1e-15); // minus halo's 30
        assert!((step.wait_s - 20e-9).abs() < 1e-15); // the [50,70] recv
        assert!((halo.wait_s - 20e-9).abs() < 1e-15); // the [15,35] recv
        assert!((halo.compute_s - 10e-9).abs() < 1e-15);
    }

    #[test]
    fn nested_blocking_spans_count_once() {
        // wait_all [0,100] containing two instant recv markers: only
        // the outer 100 ns counts as wait.
        let w = tl(vec![vec![
            op(CommOp::Recv, 20, 20),
            op(CommOp::Recv, 60, 60),
            op(CommOp::WaitAll, 0, 100),
            phase("step", 0, 200),
        ]]);
        let rows = w.phase_attribution();
        let step = rows.iter().find(|r| r.name == "step").unwrap();
        assert!((step.wait_s - 100e-9).abs() < 1e-15);
    }

    #[test]
    fn wait_outside_phases_is_binned_separately() {
        let w = tl(vec![vec![op(CommOp::Barrier, 0, 50)]]);
        let rows = w.phase_attribution();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "(no phase)");
        assert!((rows[0].wait_s - 50e-9).abs() < 1e-15);
    }

    #[test]
    fn skew_matches_kth_occurrence_across_ranks() {
        // Two allreduces; second has 400 ns entry skew, 100 ns exit.
        let w = tl(vec![
            vec![op(CommOp::Allreduce, 0, 100), op(CommOp::Allreduce, 1000, 2000)],
            vec![op(CommOp::Allreduce, 0, 100), op(CommOp::Allreduce, 1400, 2100)],
        ]);
        let skew = w.collective_skew();
        assert_eq!(skew.len(), 1);
        let r = &skew[0];
        assert_eq!(r.op, CommOp::Allreduce);
        assert_eq!(r.matched, 2);
        assert_eq!(r.entry.max_ns, 400);
        assert_eq!(r.exit.max_ns, 100);
        assert_eq!(r.entry.count, 2);
        // 0-skew first occurrence lands in bucket 0.
        assert_eq!(r.entry.buckets[0], 1);
    }

    #[test]
    fn step_summary_finds_critical_rank_and_dominant_phase() {
        // Rank 1 is slower; its step is dominated by "fft" self time.
        let w = tl(vec![
            vec![
                phase("fft", 10, 20),
                phase("step", 0, 100),
            ],
            vec![
                phase("fft", 10, 150),
                op(CommOp::Recv, 160, 180),
                phase("step", 0, 200),
            ],
        ]);
        let steps = w.step_summary("step");
        assert_eq!(steps.len(), 1);
        let s = &steps[0];
        assert_eq!(s.critical_rank, 1);
        assert_eq!(s.dominant_phase, "fft");
        assert!((s.dur_s - 200e-9).abs() < 1e-15);
        assert!((s.wait_s - 20e-9).abs() < 1e-15);
    }

    #[test]
    fn critical_path_segments_sum_exactly_to_step_duration() {
        // Rank 1 bounds the step: halo [10,50] + fft [60,160] direct
        // children (fft contains a nested phase that must NOT appear as
        // a segment), recv [20,40] inside halo, recv [170,190] directly
        // in the step.
        let w = tl(vec![
            vec![phase("step", 0, 120)],
            vec![
                op(CommOp::Recv, 20, 40),
                phase("halo", 10, 50),
                phase("transpose", 70, 90),
                phase("fft", 60, 160),
                op(CommOp::Recv, 170, 190),
                phase("step", 0, 200),
            ],
        ]);
        let cp = w.critical_path("step");
        assert_eq!(cp.steps.len(), 1);
        let st = &cp.steps[0];
        assert_eq!(st.critical_rank, 1);
        assert!((st.dur_s - 200e-9).abs() < 1e-15);
        // Segments: fft 100, halo 40, (other) 60 — exact sum.
        let total: f64 = st.segments.iter().map(|s| s.dur_s).sum();
        assert!((total - st.dur_s).abs() < 1e-15);
        let get = |n: &str| st.segments.iter().find(|s| s.phase == n).unwrap();
        assert!((get("fft").dur_s - 100e-9).abs() < 1e-15);
        assert!((get("halo").dur_s - 40e-9).abs() < 1e-15);
        assert!((get("halo").wait_s - 20e-9).abs() < 1e-15);
        assert!((get("(other)").dur_s - 60e-9).abs() < 1e-15);
        assert!((get("(other)").wait_s - 20e-9).abs() < 1e-15);
        assert!(st.segments.iter().all(|s| s.phase != "transpose"));
        // Slack: rank 0 finished 80 ns early, the critical rank has 0.
        assert!((st.slack_s[0] - 80e-9).abs() < 1e-15);
        assert_eq!(st.slack_s[1], 0.0);
        assert!((cp.mean_slack_s[0] - 80e-9).abs() < 1e-15);
        // fft bounds the run.
        assert_eq!(cp.bound_by[0].0, "fft");
        assert!(cp.text().contains("critical path over 1 steps"));
    }

    #[test]
    fn critical_path_merges_repeated_child_phases() {
        let w = tl(vec![vec![
            phase("halo", 0, 30),
            phase("halo", 40, 80),
            phase("step", 0, 100),
        ]]);
        let cp = w.critical_path("step");
        let st = &cp.steps[0];
        let halo = st.segments.iter().find(|s| s.phase == "halo").unwrap();
        assert!((halo.dur_s - 70e-9).abs() < 1e-15);
        let total: f64 = st.segments.iter().map(|s| s.dur_s).sum();
        assert!((total - 100e-9).abs() < 1e-15);
    }

    #[test]
    fn summary_renders_all_sections() {
        let w = tl(vec![
            vec![
                op(CommOp::Allreduce, 10, 30),
                phase("step", 0, 100),
            ],
            vec![
                op(CommOp::Allreduce, 12, 30),
                phase("step", 0, 90),
            ],
        ]);
        let text = w.summary();
        assert!(text.contains("phase wait-time attribution"));
        assert!(text.contains("collective entry/exit skew"));
        assert!(text.contains("dominant path per timestep"));
        assert!(text.contains("allreduce"));
    }
}
