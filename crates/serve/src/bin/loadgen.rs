//! loadgen — drive a running beatnik-serve with a seeded mix of jobs.
//!
//! Two arrival models:
//!
//! * **closed** (default): `--concurrency` workers each keep one
//!   submission in flight — the next job goes out when the previous
//!   response lands. Measures the service at its own pace.
//! * **open**: submissions arrive at `--rate` jobs/second regardless of
//!   how the service keeps up — the arrival process the service cannot
//!   push back on.
//!
//! With `--wait`, polls `GET /jobs` until every accepted job reaches a
//! terminal state, then prints a one-line outcome tally; adding
//! `--expect-complete` turns "anything but completed" into a non-zero
//! exit (used by `scripts/verify.sh`). `--scrape PATH` performs one
//! extra GET (e.g. `/metrics`) after the run and prints the body, so
//! shell scripts can grep the exposition without curl.

use beatnik_json::Value;
use beatnik_prng::Rng;
use beatnik_serve::http::request;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: loadgen --addr HOST:PORT [options]

options:
  --addr HOST:PORT        server address (required)
  --jobs N                jobs to submit (default 20)
  --mode closed|open      arrival model (default closed)
  --concurrency N         in-flight submitters in closed mode (default 4)
  --rate R                arrivals per second in open mode (default 50)
  --seed S                PRNG seed for the job mix (default 7)
  --max-ranks N           widest gang in the mix (default 4)
  --wait SECONDS          poll until all jobs are terminal (default: no wait)
  --expect-complete       exit non-zero unless every job completed
  --scrape PATH           GET PATH after the run and print the body
";

struct Options {
    addr: String,
    jobs: usize,
    open_loop: bool,
    concurrency: usize,
    rate: f64,
    seed: u64,
    max_ranks: usize,
    wait: Option<Duration>,
    expect_complete: bool,
    scrape: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        addr: String::new(),
        jobs: 20,
        open_loop: false,
        concurrency: 4,
        rate: 50.0,
        seed: 7,
        max_ranks: 4,
        wait: None,
        expect_complete: false,
        scrape: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => opts.addr = val("--addr")?,
            "--jobs" => {
                opts.jobs = val("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?
            }
            "--mode" => {
                opts.open_loop = match val("--mode")?.as_str() {
                    "closed" => false,
                    "open" => true,
                    other => return Err(format!("unknown mode '{other}' (closed|open)")),
                }
            }
            "--concurrency" => {
                opts.concurrency = val("--concurrency")?
                    .parse()
                    .map_err(|e| format!("--concurrency: {e}"))?
            }
            "--rate" => {
                opts.rate = val("--rate")?.parse().map_err(|e| format!("--rate: {e}"))?
            }
            "--seed" => {
                opts.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--max-ranks" => {
                opts.max_ranks = val("--max-ranks")?
                    .parse()
                    .map_err(|e| format!("--max-ranks: {e}"))?
            }
            "--wait" => {
                let secs: u64 = val("--wait")?.parse().map_err(|e| format!("--wait: {e}"))?;
                opts.wait = Some(Duration::from_secs(secs));
            }
            "--expect-complete" => opts.expect_complete = true,
            "--scrape" => opts.scrape = Some(val("--scrape")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    if opts.addr.is_empty() {
        return Err(format!("--addr is required\n{USAGE}"));
    }
    if opts.concurrency == 0 {
        return Err("--concurrency must be at least 1".to_string());
    }
    if opts.open_loop && !(opts.rate.is_finite() && opts.rate > 0.0) {
        return Err("--rate must be positive in open mode".to_string());
    }
    Ok(opts)
}

/// One job spec from the seeded mix. Kept deliberately small (low
/// order, coarse meshes, a few steps) so hundreds of jobs drain in
/// seconds on a laptop-class pool.
fn mix_spec(rng: &mut Rng, i: usize, max_ranks: usize) -> String {
    let mesh = [12usize, 16, 24][rng.gen_index(0..3)];
    let steps = rng.gen_index(2..7);
    let ranks = rng.gen_index(1..max_ranks + 1);
    let priority = rng.gen_index(0..10);
    let deadline = if rng.gen_bool() {
        format!(",\"deadline_ms\":{}", 2_000 + rng.gen_index(0..8) * 1_000)
    } else {
        String::new()
    };
    format!(
        "{{\"name\":\"mix-{i}\",\"order\":\"low\",\"mesh_n\":{mesh},\"steps\":{steps},\
         \"ranks\":{ranks},\"priority\":{priority}{deadline}}}"
    )
}

#[derive(Default)]
struct Tally {
    accepted: Vec<u64>,
    rejected_400: usize,
    rejected_429: usize,
    errors: usize,
}

fn submit(addr: &str, body: &str, tally: &Mutex<Tally>) {
    match request(addr, "POST", "/jobs", Some(body)) {
        Ok((201, resp)) => {
            let id = beatnik_json::parse(&resp)
                .ok()
                .and_then(|v| v.get("id").and_then(Value::as_u64));
            let mut t = tally.lock().unwrap();
            match id {
                Some(id) => t.accepted.push(id),
                None => t.errors += 1,
            }
        }
        Ok((400, _)) => tally.lock().unwrap().rejected_400 += 1,
        Ok((429, _)) => tally.lock().unwrap().rejected_429 += 1,
        _ => tally.lock().unwrap().errors += 1,
    }
}

fn run_closed(opts: &Options, tally: &Mutex<Tally>) {
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for w in 0..opts.concurrency {
            let next = &next;
            let mut rng = Rng::seed_from_u64(opts.seed ^ (w as u64).wrapping_mul(0x9e37_79b9));
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= opts.jobs {
                    return;
                }
                submit(&opts.addr, &mix_spec(&mut rng, i, opts.max_ranks), tally);
            });
        }
    });
}

fn run_open(opts: &Options, tally: &Mutex<Tally>) {
    let interval = Duration::from_secs_f64(1.0 / opts.rate);
    let start = Instant::now();
    let mut rng = Rng::seed_from_u64(opts.seed);
    std::thread::scope(|s| {
        for i in 0..opts.jobs {
            // Arrivals stay on the ideal schedule even when a
            // submission runs long — that is what "open loop" means.
            let due = start + interval * i as u32;
            if let Some(sleep) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(sleep);
            }
            let body = mix_spec(&mut rng, i, opts.max_ranks);
            s.spawn(move || submit(&opts.addr, &body, tally));
        }
    });
}

/// Poll `GET /jobs` until every id in `ids` is terminal. Returns the
/// count of each terminal state (completed, failed, canceled).
fn wait_terminal(
    addr: &str,
    ids: &[u64],
    timeout: Duration,
) -> Result<(usize, usize, usize), String> {
    let deadline = Instant::now() + timeout;
    loop {
        let (code, body) = request(addr, "GET", "/jobs", None)
            .map_err(|e| format!("GET /jobs: {e}"))?;
        if code != 200 {
            return Err(format!("GET /jobs returned {code}"));
        }
        let doc = beatnik_json::parse(&body).map_err(|e| format!("GET /jobs body: {e}"))?;
        let jobs = match doc.get("jobs") {
            Some(Value::Array(jobs)) => jobs,
            _ => return Err("GET /jobs body missing jobs array".to_string()),
        };
        let mut completed = 0;
        let mut failed = 0;
        let mut canceled = 0;
        let mut pending = 0;
        for id in ids {
            let state = jobs
                .iter()
                .find(|j| j.get("id").and_then(Value::as_u64) == Some(*id))
                .and_then(|j| j.get("state").and_then(Value::as_str).map(str::to_string));
            match state.as_deref() {
                Some("completed") => completed += 1,
                Some("failed") => failed += 1,
                Some("canceled") => canceled += 1,
                _ => pending += 1,
            }
        }
        if pending == 0 {
            return Ok((completed, failed, canceled));
        }
        if Instant::now() >= deadline {
            return Err(format!("timed out with {pending} jobs not terminal"));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let tally = Mutex::new(Tally::default());
    let start = Instant::now();
    if opts.open_loop {
        run_open(&opts, &tally);
    } else {
        run_closed(&opts, &tally);
    }
    let submitted_in = start.elapsed();
    let tally = tally.into_inner().unwrap();
    println!(
        "loadgen: submitted {} jobs in {:.2}s ({} accepted, {} invalid, {} throttled, {} errors)",
        opts.jobs,
        submitted_in.as_secs_f64(),
        tally.accepted.len(),
        tally.rejected_400,
        tally.rejected_429,
        tally.errors,
    );

    let mut exit = 0;
    if let Some(timeout) = opts.wait {
        match wait_terminal(&opts.addr, &tally.accepted, timeout) {
            Ok((completed, failed, canceled)) => {
                println!(
                    "loadgen: terminal after {:.2}s ({completed} completed, {failed} failed, \
                     {canceled} canceled)",
                    start.elapsed().as_secs_f64(),
                );
                if opts.expect_complete && completed != tally.accepted.len() {
                    eprintln!(
                        "loadgen: FAIL — {} of {} accepted jobs did not complete",
                        tally.accepted.len() - completed,
                        tally.accepted.len(),
                    );
                    exit = 1;
                }
            }
            Err(msg) => {
                eprintln!("loadgen: FAIL — {msg}");
                exit = 1;
            }
        }
    }
    if opts.expect_complete && (tally.errors > 0 || tally.rejected_400 > 0) {
        eprintln!("loadgen: FAIL — submissions were rejected or errored");
        exit = 1;
    }

    if let Some(path) = &opts.scrape {
        match request(&opts.addr, "GET", path, None) {
            Ok((200, body)) => print!("{body}"),
            Ok((code, _)) => {
                eprintln!("loadgen: scrape {path} returned {code}");
                exit = 1;
            }
            Err(e) => {
                eprintln!("loadgen: scrape {path}: {e}");
                exit = 1;
            }
        }
    }
    std::process::exit(exit);
}
