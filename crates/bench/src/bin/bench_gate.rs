//! CI regression gate over the committed bench baselines.
//!
//! ```text
//! bench_gate [--comm FRESH] [--fault FRESH] [--serve FRESH]
//!            [--compute FRESH] [--baseline-dir DIR]
//!            [--time-ratio R] [--time-floor-ns NS]
//! ```
//!
//! Compares freshly generated `BENCH_comm.json` / `BENCH_fault.json` /
//! `BENCH_serve.json` / `BENCH_compute.json`
//! against the copies in `crates/bench/baselines/`, prints a verdict
//! table, and exits non-zero when any metric regressed past its
//! ceiling (see `beatnik_bench::gate` for the threshold policy).

use beatnik_bench::{gate_comm, gate_compute, gate_fault, gate_serve, GatePolicy, GateReport};
use beatnik_json::Value;
use std::path::{Path, PathBuf};

const USAGE: &str = "USAGE: bench_gate [OPTIONS]
  --comm <FILE>           fresh comm bench results [BENCH_comm.json]
  --fault <FILE>          fresh fault bench results [BENCH_fault.json]
  --serve <FILE>          fresh serve bench results [BENCH_serve.json]
  --compute <FILE>        fresh compute-kernel bench results [BENCH_compute.json]
  --baseline-dir <DIR>    committed baselines [crates/bench/baselines]
  --time-ratio <R>        ceiling multiplier for time metrics [2.0]
  --time-floor-ns <NS>    additive jitter floor for comm time metrics [1e7]
  --fault-floor-ns <NS>   additive jitter floor for fault metrics [1.5e8]
  --serve-floor-ns <NS>   additive jitter floor for serve metrics [2e9]
  --compute-floor-ns <NS> additive jitter floor for per-element kernel times [5.0]
  --help                  print this message";

struct Options {
    comm: PathBuf,
    fault: PathBuf,
    serve: PathBuf,
    compute: PathBuf,
    baseline_dir: PathBuf,
    policy: GatePolicy,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        comm: PathBuf::from("BENCH_comm.json"),
        fault: PathBuf::from("BENCH_fault.json"),
        serve: PathBuf::from("BENCH_serve.json"),
        compute: PathBuf::from("BENCH_compute.json"),
        baseline_dir: PathBuf::from("crates/bench/baselines"),
        policy: GatePolicy::default(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--comm" => opts.comm = PathBuf::from(value("--comm")?),
            "--fault" => opts.fault = PathBuf::from(value("--fault")?),
            "--serve" => opts.serve = PathBuf::from(value("--serve")?),
            "--compute" => opts.compute = PathBuf::from(value("--compute")?),
            "--baseline-dir" => opts.baseline_dir = PathBuf::from(value("--baseline-dir")?),
            "--time-ratio" => {
                opts.policy.time_ratio = value("--time-ratio")?
                    .parse()
                    .map_err(|e| format!("--time-ratio: {e}"))?;
            }
            "--time-floor-ns" => {
                opts.policy.time_floor_ns = value("--time-floor-ns")?
                    .parse()
                    .map_err(|e| format!("--time-floor-ns: {e}"))?;
            }
            "--fault-floor-ns" => {
                opts.policy.fault_floor_ns = value("--fault-floor-ns")?
                    .parse()
                    .map_err(|e| format!("--fault-floor-ns: {e}"))?;
            }
            "--serve-floor-ns" => {
                opts.policy.serve_floor_ns = value("--serve-floor-ns")?
                    .parse()
                    .map_err(|e| format!("--serve-floor-ns: {e}"))?;
            }
            "--compute-floor-ns" => {
                opts.policy.compute_floor_ns = value("--compute-floor-ns")?
                    .parse()
                    .map_err(|e| format!("--compute-floor-ns: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown option {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn load(path: &Path) -> Result<Value, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    beatnik_json::parse(&text).map_err(|e| format!("cannot parse {}: {e:?}", path.display()))
}

fn run_gate(
    name: &str,
    baseline: &Path,
    fresh: &Path,
    gate: impl Fn(&Value, &Value) -> Result<GateReport, String>,
) -> Result<usize, String> {
    let report = gate(&load(baseline)?, &load(fresh)?)?;
    println!(
        "-- {name}: {} vs baseline {} --",
        fresh.display(),
        baseline.display()
    );
    print!("{}", report.text());
    let bad = report.regressions();
    println!(
        "{name}: {}/{} comparisons ok{}\n",
        report.rows.len() - bad,
        report.rows.len(),
        if bad > 0 {
            format!(", {bad} REGRESSED")
        } else {
            String::new()
        }
    );
    Ok(bad)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg == USAGE { 0 } else { 2 });
        }
    };
    let policy = opts.policy;
    let result = run_gate(
        "comm",
        &opts.baseline_dir.join("BENCH_comm.json"),
        &opts.comm,
        |b, f| gate_comm(b, f, &policy),
    )
    .and_then(|bad| {
        Ok(bad
            + run_gate(
                "fault",
                &opts.baseline_dir.join("BENCH_fault.json"),
                &opts.fault,
                |b, f| gate_fault(b, f, &policy),
            )?)
    })
    .and_then(|bad| {
        Ok(bad
            + run_gate(
                "serve",
                &opts.baseline_dir.join("BENCH_serve.json"),
                &opts.serve,
                |b, f| gate_serve(b, f, &policy),
            )?)
    })
    .and_then(|bad| {
        Ok(bad
            + run_gate(
                "compute",
                &opts.baseline_dir.join("BENCH_compute.json"),
                &opts.compute,
                |b, f| gate_compute(b, f, &policy),
            )?)
    });
    match result {
        Ok(0) => println!("bench gate: PASS"),
        Ok(n) => {
            println!("bench gate: FAIL ({n} regressions)");
            std::process::exit(1);
        }
        Err(msg) => {
            eprintln!("bench gate: error: {msg}");
            std::process::exit(2);
        }
    }
}
