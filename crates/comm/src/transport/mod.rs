//! The pluggable transport layer: how envelopes move between ranks.
//!
//! Everything above this module — the eager/rendezvous split, indexed
//! mailboxes, posted receives, every collective algorithm, fault
//! injection, and the metrics plane — is written against the indexed
//! [`crate::mailbox::Mailbox`] and never names a backend. A
//! [`Transport`] implementation decides what happens *between* a
//! sender's [`Transport::deliver`] call and the envelope appearing in
//! the destination mailbox:
//!
//! * [`thread::ThreadTransport`] — the classic in-process path: the
//!   envelope is pushed straight into the destination mailbox, payload
//!   buffers moving by pointer between rank threads. Zero copies beyond
//!   what the protocol itself charges.
//! * [`shmem::ShmemTransport`] — envelopes are serialized into
//!   memory-mapped SPSC byte rings, one ring per ordered rank pair, and
//!   a poller thread on the receiving side deserializes frames into the
//!   local mailboxes. The rings are plain files under a shared
//!   directory, so the same code serves a single process (loopback
//!   mode, used by the backend test matrix) and one process per rank
//!   (spawned by [`crate::proc`]).
//! * [`tcp::TcpTransport`] — length-prefixed frames over per-pair TCP
//!   sockets with `TCP_NODELAY`; a nonblocking poller drains every
//!   peer's stream. An unexpected EOF or read error (no `BYE` control
//!   frame first) marks the peer failed in the ledger, so ULFM-style
//!   revoke/shrink works across real process and machine boundaries.
//!
//! ## The contract (DESIGN.md §13 in full)
//!
//! A backend must (1) deliver envelopes **FIFO per (sender, receiver,
//! channel)** — the non-overtaking guarantee every collective schedule
//! leans on; (2) deliver into the *destination mailbox* so posted
//! receives, wildcard matching, and interrupts behave identically on
//! every backend; (3) propagate failure-ledger news ([`CtrlMsg`]) to
//! every rank that does not share the sender's [`Registry`]; and (4)
//! treat payload bytes as opaque — a wire backend may only carry
//! [`Envelope`]s whose element type is plain data (no drop glue), and
//! must refuse loudly otherwise.
//!
//! The eager/rendezvous protocol split happens *above* the transport
//! (in the send paths), so its copy accounting is backend-independent;
//! wire backends add their own serialization copies, which is why the
//! copy-count invariant tests pin the thread backend.

pub mod shmem;
pub mod tcp;
pub mod thread;
pub mod wire;

use crate::message::Envelope;
use crate::registry::{CommId, Registry};
use std::sync::Arc;

/// Default eager/rendezvous crossover in payload bytes. Mirrors the
/// 8 KiB eager limit common to production MPI transports: below it the
/// extra copy is cheaper than the envelope round-trip it avoids.
pub const DEFAULT_EAGER_LIMIT: usize = 8192;

/// Name of the environment variable overriding the eager limit.
pub const EAGER_LIMIT_ENV: &str = "BEATNIK_EAGER_LIMIT";

/// The eager limit for a new world: `BEATNIK_EAGER_LIMIT` when set to
/// a parseable byte count, [`DEFAULT_EAGER_LIMIT`] otherwise.
///
/// Read once at world construction (via [`crate::CommConfig`], the
/// single env-reading point), not per message, so a mid-run env change
/// cannot split a world across two protocols.
pub fn eager_limit_from_env() -> usize {
    crate::config::CommConfig::from_env().eager_limit
}

/// The selectable transport backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// In-process: ranks are threads, envelopes move by pointer.
    Thread,
    /// Memory-mapped shared-memory rings (in-process or one process per
    /// rank via [`crate::proc`]).
    Shmem,
    /// Length-prefixed frames over per-pair TCP sockets.
    Tcp,
}

impl TransportKind {
    /// Every backend, for test matrices and smoke loops.
    pub fn all() -> [TransportKind; 3] {
        [TransportKind::Thread, TransportKind::Shmem, TransportKind::Tcp]
    }

    /// Stable lowercase name (env values, metrics labels, bench rows).
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Thread => "thread",
            TransportKind::Shmem => "shmem",
            TransportKind::Tcp => "tcp",
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "thread" => Ok(TransportKind::Thread),
            "shmem" | "shm" => Ok(TransportKind::Shmem),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(format!(
                "unknown transport '{other}' (expected thread|shmem|tcp)"
            )),
        }
    }
}

/// Addressing for one envelope delivery: which mailbox, hosted where,
/// sent by whom. `comm` already carries the collective-channel bit, so
/// it is exactly the destination mailbox key's communicator component.
#[derive(Debug, Clone, Copy)]
pub struct Route {
    /// Communicator id OR'd with the channel bit.
    pub comm: CommId,
    /// Destination rank *within* that communicator (the mailbox key).
    pub dst_local: usize,
    /// World rank sending the envelope (selects the wire, if any).
    pub src_world: usize,
    /// World rank hosting the destination mailbox.
    pub dst_world: usize,
}

/// Failure-ledger news a transport must carry to ranks that do not
/// share the sender's [`Registry`]. In-process backends (and wire
/// backends in loopback mode) never need to: the ledger itself is
/// shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlMsg {
    /// A world rank died; peers must mark it in their ledgers.
    Failed(usize),
    /// A communicator was revoked ULFM-style.
    Revoke(CommId),
    /// A rank panicked with a genuine bug; the world is tearing down.
    Abort,
    /// Clean goodbye from a world rank: its connection closing is a
    /// shutdown, not a failure.
    Bye(usize),
}

/// A pluggable envelope-delivery backend. See the module docs for the
/// contract a backend must uphold.
pub trait Transport: Send + Sync {
    /// Which backend this is (metrics labels, diagnostics).
    fn kind(&self) -> TransportKind;

    /// One-time wiring after the world's registry exists; wire backends
    /// start their pollers here.
    fn attach(&self, _registry: &Arc<Registry>) {}

    /// Deliver `env` along `route`. Must preserve per-(sender,
    /// receiver, channel) FIFO order and terminate in a
    /// `registry.mailbox(route.comm, route.dst_local).push(env)` on the
    /// rank that hosts the destination mailbox.
    fn deliver(&self, registry: &Registry, route: Route, env: Envelope);

    /// Whether envelopes addressed to `dst_world` move by pointer end to
    /// end — the sender's allocation is claimed by the receiver with no
    /// serialization in between. True for the thread backend everywhere
    /// and for shmem when the destination mailbox is hosted in this
    /// process (loopback worlds, self-sends); false across real process
    /// or machine boundaries, where a wire copy is physically required.
    /// Ownership-transfer sends ([`crate::Communicator::isend_owned`])
    /// charge zero protocol copies regardless — this capability reports
    /// what the *backend* does underneath.
    fn pointer_handoff(&self, _dst_world: usize) -> bool {
        false
    }

    /// Propagate failure-ledger news to ranks with their own registry.
    /// No-op for backends whose ranks share one.
    fn publish_ctrl(&self, _ctrl: CtrlMsg) {}

    /// Stop pollers and release wire resources. Called by the world
    /// runner after every rank thread has joined (loopback) or by the
    /// process teardown path (multi-process).
    fn shutdown(&self) {}
}

/// Build a loopback transport: all `num_ranks` ranks live in this
/// process and share one registry, but inter-rank envelopes still cross
/// the backend's real wire (rings or sockets). This is what the world
/// runners install for `World::builder(n).transport(kind)`.
pub(crate) fn build_loopback(
    kind: TransportKind,
    num_ranks: usize,
    config: &crate::config::CommConfig,
) -> Arc<dyn Transport> {
    match kind {
        TransportKind::Thread => Arc::new(thread::ThreadTransport),
        TransportKind::Shmem => Arc::new(
            // Messages at or above the eager limit take the zero-copy
            // handoff slab; below it they exercise real serialization,
            // mirroring the protocol split above the transport.
            shmem::ShmemTransport::loopback(num_ranks, config.shm_ring_bytes, config.eager_limit)
                .unwrap_or_else(|e| panic!("shmem transport setup failed: {e}")),
        ),
        TransportKind::Tcp => Arc::new(
            tcp::TcpTransport::loopback(num_ranks)
                .unwrap_or_else(|e| panic!("tcp transport setup failed: {e}")),
        ),
    }
}

/// Instantiate a block of transport-parameterized tests once per
/// backend.
///
/// Write each test as `fn name(kind: TransportKind) { ... }`; the macro
/// expands it into `thread_backend::name`, `shmem_backend::name`, and
/// `tcp_backend::name` `#[test]` functions, binding `kind` to the
/// matching [`TransportKind`] so the body can do
/// `World::builder(n).transport(kind)`. Ordinary test attributes
/// (`#[ignore]`, `#[should_panic]`) pass through.
///
/// ```
/// beatnik_comm::backend_matrix! {
///     fn allreduce_sums(kind: TransportKind) {
///         let sums = beatnik_comm::World::builder(2)
///             .transport(kind)
///             .run(|c| c.allreduce_sum(1.0));
///         assert_eq!(sums, [2.0, 2.0]);
///     }
/// }
/// # fn main() {}
/// ```
#[macro_export]
macro_rules! backend_matrix {
    ($($(#[$attr:meta])* fn $name:ident($kind:ident: TransportKind) $body:block)*) => {
        $crate::backend_matrix!(@backend thread_backend, Thread,
            $($(#[$attr])* fn $name($kind) $body)*);
        $crate::backend_matrix!(@backend shmem_backend, Shmem,
            $($(#[$attr])* fn $name($kind) $body)*);
        $crate::backend_matrix!(@backend tcp_backend, Tcp,
            $($(#[$attr])* fn $name($kind) $body)*);
    };
    (@backend $module:ident, $variant:ident,
     $($(#[$attr:meta])* fn $name:ident($kind:ident) $body:block)*) => {
        mod $module {
            #[allow(unused_imports)]
            use super::*;
            $(
                $(#[$attr])*
                #[test]
                fn $name() {
                    let $kind: $crate::TransportKind = $crate::TransportKind::$variant;
                    $body
                }
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_names() {
        for kind in TransportKind::all() {
            assert_eq!(kind.name().parse::<TransportKind>().unwrap(), kind);
        }
        assert_eq!("shm".parse::<TransportKind>().unwrap(), TransportKind::Shmem);
        assert_eq!(" TCP ".parse::<TransportKind>().unwrap(), TransportKind::Tcp);
        assert!("carrier-pigeon".parse::<TransportKind>().is_err());
    }

    #[test]
    fn default_eager_limit_matches_mpi_convention() {
        assert_eq!(DEFAULT_EAGER_LIMIT, 8192);
    }
}
