//! Ablation: the cutoff distance accuracy/performance tradeoff the paper
//! discusses in §3.2 ("small cutoff distances result in better
//! scalability at the expense of numerical inaccuracy...").
//!
//! This is a *real measurement*: for a fixed point cloud, compare the
//! cutoff solver's Birkhoff–Rott velocities against the exact ring-pass
//! solver while counting interaction pairs (the compute cost driver).

use beatnik_comm::{dims_create, World};
use beatnik_core::br::{BrPoint, BrSolver, CutoffBrSolver, ExactBrSolver};
use beatnik_mesh::SpatialMesh;
use beatnik_spatial::neighbors::{Backend, NeighborList};

/// Interface-like point cloud: a perturbed sheet in (-3,3)^2.
fn sheet(n_side: usize) -> Vec<BrPoint> {
    let mut pts = Vec::with_capacity(n_side * n_side);
    for r in 0..n_side {
        for c in 0..n_side {
            let x = -3.0 + 6.0 * (c as f64 + 0.5) / n_side as f64;
            let y = -3.0 + 6.0 * (r as f64 + 0.5) / n_side as f64;
            let z = 0.3 * (x * 1.1).sin() * (y * 0.9).cos();
            pts.push(BrPoint {
                pos: [x, y, z],
                strength: [(y * 0.7).sin() * 1e-3, (x * 0.5).cos() * 1e-3, 0.0],
            });
        }
    }
    pts
}

fn main() {
    let n_side = 48;
    let ranks = 4;
    let cutoffs = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];
    println!("=== Ablation: cutoff distance vs accuracy and cost ({n_side}^2 points, {ranks} ranks) ===\n");
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "cutoff", "max rel err", "rms rel err", "pairs", "pairs/exact"
    );

    let all = sheet(n_side);
    let n = all.len();
    let exact_pairs = (n * n) as f64;

    for &cutoff in &cutoffs {
        let all2 = all.clone();
        let out = World::builder(ranks).run(move |comm| {
            let chunk = n / comm.size();
            let lo = comm.rank() * chunk;
            let hi = if comm.rank() + 1 == comm.size() { n } else { lo + chunk };
            let mine = &all2[lo..hi];
            let eps = 0.1;
            let exact = ExactBrSolver.velocities(&comm, mine, eps);
            let smesh =
                SpatialMesh::new([-3.0, -3.0, -3.0], [3.0, 3.0, 3.0], dims_create(comm.size()));
            let solver = CutoffBrSolver::new(smesh, cutoff, Backend::Grid);
            let approx = solver.velocities(&comm, mine, eps);

            let mut max_rel = 0.0f64;
            let mut sum_sq = 0.0f64;
            for (e, a) in exact.iter().zip(&approx) {
                let err: f64 = (0..3).map(|k| (e[k] - a[k]).powi(2)).sum::<f64>().sqrt();
                let mag: f64 = (0..3).map(|k| e[k] * e[k]).sum::<f64>().sqrt();
                let rel = if mag > 1e-300 { err / mag } else { 0.0 };
                max_rel = max_rel.max(rel);
                sum_sq += rel * rel;
            }
            let max_rel = comm.allreduce_max(max_rel);
            let sum_sq = comm.allreduce_sum(sum_sq);
            (max_rel, (sum_sq / n as f64).sqrt())
        });
        let (max_rel, rms) = out[0];

        // Pair count (the compute-cost driver), measured serially.
        let positions: Vec<[f64; 3]> = all.iter().map(|p| p.pos).collect();
        let nl = NeighborList::build(&positions, &positions, cutoff, Backend::Grid);
        let pairs = nl.total_pairs() as f64;

        println!(
            "{cutoff:>8.2} {max_rel:>14.4e} {rms:>14.4e} {pairs:>12.0} {:>12.4}",
            pairs / exact_pairs
        );
    }
    println!(
        "\nshape check: RMS error falls monotonically with cutoff while pair count \
         (compute + halo cost) rises toward the O(n^2) exact solver. Small cutoffs \
         lose most of the far field (paper §4: the single-mode outer rollup \"will \
         not develop without inclusion of distant far-field surface points\")."
    );
}
