//! Gather and ring allgather.
//!
//! Gather is direct-to-root (the algorithm MPI implementations use for
//! short messages). Allgather uses the ring algorithm: in step `s`, each
//! rank forwards the block it received in step `s−1` to its right
//! neighbor. P−1 steps, bandwidth-optimal, and the same pattern heFFTe's
//! non-alltoall exchanges produce.

use crate::communicator::Communicator;
use crate::error::CommError;
use crate::message::CommData;
use crate::trace::OpKind;
use beatnik_telemetry::CommOp;

/// Gather per-rank buffers to `root`. The root receives a `Vec` indexed by
/// source rank; other ranks get `None`. Buffers may have differing lengths.
pub fn gather<T: CommData + Clone>(
    comm: &Communicator,
    root: usize,
    data: Vec<T>,
) -> Result<Option<Vec<Vec<T>>>, CommError> {
    comm.coll_begin(OpKind::Gather);
    let mut span = comm.telemetry().op(CommOp::Gather);
    span.peer(root);
    span.bytes(std::mem::size_of_val(data.as_slice()) as u64);
    comm.check_group_alive()?;
    let p = comm.size();
    let r = comm.rank();
    assert!(root < p, "gather: root {root} out of range");
    if r == root {
        let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        out[root] = data;
        for (src, slot) in out.iter_mut().enumerate() {
            if src != root {
                *slot = comm.try_coll_recv::<T>(src, src as u64, "gather")?;
            }
        }
        Ok(Some(out))
    } else {
        comm.coll_send(root, r as u64, data, OpKind::Gather);
        Ok(None)
    }
}

/// All-gather per-rank buffers with the ring algorithm; every rank returns
/// the same `Vec` indexed by source rank. Buffers may differ in length.
pub fn allgather<T: CommData + Clone>(
    comm: &Communicator,
    data: Vec<T>,
) -> Result<Vec<Vec<T>>, CommError> {
    comm.coll_begin(OpKind::Allgather);
    let mut span = comm.telemetry().op(CommOp::Allgather);
    span.bytes(std::mem::size_of_val(data.as_slice()) as u64);
    comm.check_group_alive()?;
    let p = comm.size();
    let r = comm.rank();
    let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    if p == 1 {
        out[0] = data;
        return Ok(out);
    }
    let right = (r + 1) % p;
    let left = (r + p - 1) % p;
    out[r] = data;
    // In step s we forward the block originated by rank (r - s + 1) and
    // receive the block originated by rank (r - s).
    for s in 1..p {
        let fwd_origin = (r + p - (s - 1)) % p;
        let recv_origin = (r + p - s) % p;
        let fwd = out[fwd_origin].clone();
        comm.coll_send(right, s as u64, fwd, OpKind::Allgather);
        out[recv_origin] = comm.try_coll_recv::<T>(left, s as u64, "allgather")?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::trace::OpKind;
    use crate::world::World;

    #[test]
    fn gather_collects_in_rank_order() {
        for p in [1usize, 2, 3, 5, 8] {
            let out = World::builder(p).run(|c| c.gatherv(0, &vec![c.rank() as u32; c.rank() + 1]));
            let (flat, counts) = out[0].as_ref().unwrap();
            assert_eq!(counts, &(1..=p).collect::<Vec<_>>());
            let mut rest = flat.as_slice();
            for (src, &n) in counts.iter().enumerate() {
                let (block, tail) = rest.split_at(n);
                rest = tail;
                assert_eq!(block, vec![src as u32; src + 1]);
            }
            for v in &out[1..] {
                assert!(v.is_none());
            }
        }
    }

    #[test]
    fn allgather_all_sizes_variable_lengths() {
        for p in [1usize, 2, 3, 4, 7] {
            let out = World::builder(p).run(|c| c.allgatherv(&vec![c.rank() as i64; c.rank() % 3 + 1]));
            for (flat, counts) in out {
                assert_eq!(counts.len(), p);
                let mut rest = flat.as_slice();
                for (src, &n) in counts.iter().enumerate() {
                    let (block, tail) = rest.split_at(n);
                    rest = tail;
                    assert_eq!(block, vec![src as i64; src % 3 + 1]);
                }
            }
        }
    }

    #[test]
    fn allgather_ring_message_count() {
        let (_, trace) = World::builder(4).run_traced(|c| {
            let _ = c.allgather(&[0u64; 8]); // 64 bytes per block
        });
        for r in 0..4 {
            let s = trace.rank(r).get(OpKind::Allgather);
            assert_eq!(s.calls, 1);
            assert_eq!(s.messages, 3); // P-1 ring steps
            assert_eq!(s.bytes, 3 * 64);
        }
    }
}
