//! Randomized-property tests of the FFT stack over arbitrary lengths
//! and signals (both the radix-2 and Bluestein paths, the 2D transform,
//! and the real-input helpers). Cases are generated with the workspace's
//! deterministic PRNG — same coverage shape as the former proptest
//! version, but reproducible byte-for-byte on every run and hermetic
//! (no registry dependencies).

use beatnik_fft::dft::dft_naive;
use beatnik_fft::real::{rfft_pair, RealFft};
use beatnik_fft::{Complex, Fft, Fft2d};
use beatnik_prng::Rng;

/// A random signal with `1..max_len` elements in `[-1e3, 1e3)²`.
fn signal(rng: &mut Rng, max_len: usize) -> Vec<Complex> {
    let n = rng.gen_index(1..max_len);
    (0..n)
        .map(|_| Complex::new(rng.gen_range(-1e3..1e3), rng.gen_range(-1e3..1e3)))
        .collect()
}

fn reals(rng: &mut Rng, lo: usize, hi: usize) -> Vec<f64> {
    let n = rng.gen_index(lo..hi);
    (0..n).map(|_| rng.gen_range(-1e3..1e3)).collect()
}

const CASES: usize = 96;

#[test]
fn roundtrip_identity_any_length() {
    let mut rng = Rng::seed_from_u64(0xFF7_0001);
    for _ in 0..CASES {
        let x = signal(&mut rng, 300);
        let plan = Fft::new(x.len());
        let mut buf = x.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-7 * (1.0 + b.abs()), "len {}", x.len());
        }
    }
}

#[test]
fn unnormalized_inverse_scales_by_n() {
    let mut rng = Rng::seed_from_u64(0xFF7_0002);
    for _ in 0..CASES {
        let x = signal(&mut rng, 120);
        let n = x.len();
        let plan = Fft::new(n);
        let mut a = x.clone();
        plan.inverse(&mut a);
        let mut b = x;
        plan.inverse_unnormalized(&mut b);
        for (u, v) in a.iter().zip(&b) {
            assert!((u.scale(n as f64) - *v).abs() < 1e-6 * (1.0 + v.abs()));
        }
    }
}

#[test]
fn linearity_of_forward_transform() {
    let mut rng = Rng::seed_from_u64(0xFF7_0003);
    for _ in 0..CASES {
        let x = signal(&mut rng, 100);
        let alpha = rng.gen_range(-10.0..10.0);
        let plan = Fft::new(x.len());
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fax: Vec<Complex> = x.iter().map(|z| z.scale(alpha)).collect();
        plan.forward(&mut fax);
        for (a, b) in fax.iter().zip(&fx) {
            assert!((*a - b.scale(alpha)).abs() < 1e-6 * (1.0 + b.abs() * alpha.abs()));
        }
    }
}

#[test]
fn small_sizes_match_naive_dft() {
    let mut rng = Rng::seed_from_u64(0xFF7_0004);
    for _ in 0..CASES {
        let x = signal(&mut rng, 48);
        let plan = Fft::new(x.len());
        let mut fast = x.clone();
        plan.forward(&mut fast);
        let slow = dft_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-6 * (1.0 + b.abs()), "len {}", x.len());
        }
    }
}

#[test]
fn fft2d_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xFF7_0005);
    for _ in 0..CASES {
        let vals = reals(&mut rng, 1, 100);
        // Shape the flat vector into rows x cols (truncate remainder).
        let rows = rng.gen_index(1..10).min(vals.len());
        let cols = vals.len() / rows;
        if cols == 0 {
            continue;
        }
        let data: Vec<Complex> = vals[..rows * cols]
            .iter()
            .map(|&v| Complex::real(v))
            .collect();
        let plan = Fft2d::new(rows, cols);
        let mut buf = data.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&data) {
            assert!((*a - *b).abs() < 1e-7 * (1.0 + b.abs()), "{rows}x{cols}");
        }
    }
}

#[test]
fn real_fft_roundtrip_even_lengths() {
    let mut rng = Rng::seed_from_u64(0xFF7_0006);
    for _ in 0..CASES {
        let vals = reals(&mut rng, 1, 120);
        let n = (vals.len() / 2) * 2;
        if n < 2 {
            continue;
        }
        let x = &vals[..n];
        let plan = RealFft::new(n);
        let back = plan.inverse(&plan.forward(x));
        for (a, b) in back.iter().zip(x) {
            assert!((a - b).abs() < 1e-7 * (1.0 + b.abs()), "n {n}");
        }
    }
}

#[test]
fn rfft_pair_splits_correctly() {
    let mut rng = Rng::seed_from_u64(0xFF7_0007);
    for _ in 0..CASES {
        let vals = reals(&mut rng, 2, 80);
        let n = vals.len() / 2;
        if n < 1 {
            continue;
        }
        let a = &vals[..n];
        let b = &vals[n..2 * n];
        let plan = Fft::new(n);
        let (fa, fb) = rfft_pair(&plan, a, b);
        let sa = dft_naive(&a.iter().map(|&v| Complex::real(v)).collect::<Vec<_>>());
        let sb = dft_naive(&b.iter().map(|&v| Complex::real(v)).collect::<Vec<_>>());
        for k in 0..n {
            assert!((fa[k] - sa[k]).abs() < 1e-6 * (1.0 + sa[k].abs()));
            assert!((fb[k] - sb[k]).abs() < 1e-6 * (1.0 + sb[k].abs()));
        }
    }
}
