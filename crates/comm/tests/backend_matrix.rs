//! The backend matrix: collective correctness, non-overtaking
//! point-to-point, and fault kill/shrink behavior must hold on every
//! transport backend — the suites below run unmodified over the thread,
//! shared-memory, and TCP loopback transports via [`backend_matrix!`].
//!
//! Payloads are plain-old-data (`f64`/`u64`): wire backends serialize
//! inter-rank envelopes, which droppy element types cannot survive (and
//! the runtime enforces that with a panic).

use beatnik_comm::{backend_matrix, AllToAllAlgo, CommError, FaultPlan, SumOp, World};
use std::time::Duration;

/// Per-op receive deadline: long enough for a loaded CI machine, short
/// enough that a lost wire frame fails the test rather than hanging it.
const TIMEOUT: Duration = Duration::from_secs(30);

backend_matrix! {
    /// Every collective family computes the right answer over the wire.
    fn collectives_are_correct(kind: TransportKind) {
        World::builder(4).transport(kind).recv_timeout(TIMEOUT).run(|c| {
            let (rank, size) = (c.rank(), c.size());

            c.barrier();

            let rooted = (rank == 1).then(|| vec![3.0f64, 5.0]);
            assert_eq!(c.broadcast(1, rooted), [3.0, 5.0]);

            assert_eq!(c.allreduce_sum(rank as f64), 6.0);
            assert_eq!(c.allreduce_max(rank as f64), 3.0);

            let gathered = c.allgather(&[rank as u64]);
            assert_eq!(gathered, [0, 1, 2, 3]);

            let reduced = c.reduce(0, rank as f64, &SumOp);
            assert_eq!(reduced, (rank == 0).then_some(6.0));

            // One element to each peer, all three alltoall algorithms.
            let send: Vec<u64> = (0..size).map(|d| (rank * 10 + d) as u64).collect();
            let want: Vec<u64> = (0..size).map(|s| (s * 10 + rank) as u64).collect();
            for algo in [AllToAllAlgo::Pairwise, AllToAllAlgo::Direct, AllToAllAlgo::Bruck] {
                assert_eq!(c.alltoall_with(&send, algo), want, "{algo:?}");
            }

            let (flat, counts) = c.allgatherv(&vec![rank as u64; rank + 1]);
            assert_eq!(counts, [1, 2, 3, 4]);
            assert_eq!(flat.len(), 10);
        });
    }

    /// Both the eager and the rendezvous protocol move bytes intact
    /// across the backend, and per-peer message streams never overtake.
    fn eager_and_rendezvous_streams_stay_ordered(kind: TransportKind) {
        World::builder(3)
            .transport(kind)
            .recv_timeout(TIMEOUT)
            .eager_limit(256)
            .run(|c| {
                let peers = 3usize;
                for round in 0..20u64 {
                    for dst in 0..peers {
                        if dst == c.rank() {
                            continue;
                        }
                        // Alternate below/above the eager limit so both
                        // protocols interleave on the same stream.
                        let len = if round % 2 == 0 { 4 } else { 128 };
                        let msg: Vec<u64> = (0..len).map(|i| round * 1000 + i).collect();
                        c.send(dst, 7, msg);
                    }
                }
                for src in 0..peers {
                    if src == c.rank() {
                        continue;
                    }
                    for round in 0..20u64 {
                        let got: Vec<u64> = c.recv(src, 7);
                        assert_eq!(got[0], round * 1000, "stream from {src} overtook");
                        assert!(got.iter().enumerate().all(|(i, &v)| v == round * 1000 + i as u64));
                    }
                }
            });
    }

    /// A rank killed mid-collective surfaces as `RankFailed`/`Timeout`
    /// on every survivor — the failure ledger propagates over the
    /// backend instead of hanging it.
    fn killed_rank_fails_collectives_fast(kind: TransportKind) {
        let plan = FaultPlan::parse("kill:r2@step2", 0).expect("static plan");
        let report = World::builder(4)
            .transport(kind)
            .recv_timeout(TIMEOUT)
            .fault_plan(&plan)
            .run_ft(|comm| {
                let comm = comm.with_recv_timeout(Duration::from_secs(5));
                for step in 1..=50u64 {
                    comm.fault_step(step); // rank 2 dies at step 2
                    if let Err(e) = comm
                        .try_allreduce(comm.rank() as f64, &SumOp)
                        .and_then(|_| comm.try_barrier())
                    {
                        return (comm.rank(), e);
                    }
                }
                panic!("rank {} never observed the failure", comm.rank());
            });
        assert_eq!(report.killed, [2]);
        let survivors: Vec<(usize, CommError)> = report.results.into_iter().flatten().collect();
        assert_eq!(survivors.len(), 3, "every survivor must report");
        for (rank, err) in survivors {
            match err {
                CommError::RankFailed { failed, .. } => assert_eq!(failed, 2),
                CommError::Timeout { .. } => {}
                other => panic!("rank {rank} got unexpected error {other}"),
            }
        }
    }

    /// After a death, `shrink` yields a dense working communicator whose
    /// collectives run over the same backend.
    fn shrink_after_death_recovers(kind: TransportKind) {
        let plan = FaultPlan::parse("kill:r2@step1", 0).expect("static plan");
        let report = World::builder(4)
            .transport(kind)
            .recv_timeout(TIMEOUT)
            .fault_plan(&plan)
            .run_ft(|comm| {
                comm.fault_step(1); // rank 2 dies here
                let shrunk = comm.shrink().expect("survivors agree and shrink");
                assert_eq!(shrunk.size(), 3);
                let sum = shrunk
                    .try_allreduce(comm.rank() as f64, &SumOp)
                    .expect("collective on shrunken comm");
                assert_eq!(sum, 4.0); // world ranks 0 + 1 + 3
                shrunk.rank()
            });
        assert_eq!(report.killed, [2]);
        let mut new_ranks: Vec<usize> = report.results.into_iter().flatten().collect();
        new_ranks.sort_unstable();
        assert_eq!(new_ranks, [0, 1, 2], "survivors renumber densely");
    }
}
