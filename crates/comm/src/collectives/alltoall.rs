//! All-to-all exchanges — the communication pattern at the heart of the
//! paper's low-order (FFT) benchmark.
//!
//! Three base algorithms are provided because the heFFTe evaluation in
//! the paper (Section 5.5, Figure 9) is precisely about the difference
//! between MPI's built-in `MPI_Alltoall` and a library's custom
//! point-to-point exchange:
//!
//! * [`AllToAllAlgo::Pairwise`] — the scheduled pairwise exchange used by
//!   `MPI_Alltoall` for large messages: P−1 steps, in step `s` rank `r`
//!   sends to `(r+s) mod P` and receives from `(r−s) mod P`, so each
//!   network link carries one message at a time.
//! * [`AllToAllAlgo::Direct`] — post-everything-then-receive, the strategy
//!   custom exchange code (like heFFTe's `AllToAll=False` path) typically
//!   uses; fewer synchronization constraints, but all P−1 messages
//!   contend simultaneously.
//! * [`AllToAllAlgo::Bruck`] — the log-P store-and-forward algorithm MPI
//!   libraries use for *small* messages: ⌈log₂P⌉ rounds of aggregated
//!   exchanges instead of P−1 point-to-point steps, trading extra data
//!   movement for far fewer messages. The win is latency-bound traffic.
//!
//! [`AllToAllAlgo::Adaptive`] picks among them per call from the message
//! size, using the same power-of-two size bins
//! ([`beatnik_telemetry::sizebins`]) the trace histograms are keyed by:
//!
//! | condition (regular alltoall)        | choice   |
//! |-------------------------------------|----------|
//! | P ≥ 8 and block ≤ 256 B             | Bruck    |
//! | block ≥ 32 KiB                      | Pairwise |
//! | otherwise                           | Direct   |
//!
//! For the irregular [`alltoallv`] the per-rank volumes differ, so a
//! rank-local decision is only safe between Pairwise and Direct (their
//! message sets and tags are identical — ranks may disagree without
//! deadlocking). Bruck needs a globally consistent choice and is only
//! entered when every rank requests it explicitly, or from the regular
//! [`alltoall`], where the uniform block size makes every rank's
//! adaptive decision identical by construction.
//!
//! All algorithms produce identical results; they differ (on a real
//! network) in congestion behaviour, which `beatnik-model` models for
//! the figures.

use crate::communicator::Communicator;
use crate::error::CommError;
use crate::message::CommData;
use crate::trace::OpKind;
use beatnik_telemetry::{algos, sizebins, CommOp};

/// Algorithm selector for [`alltoall`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllToAllAlgo {
    /// Scheduled pairwise exchange (MPI_Alltoall-style).
    #[default]
    Pairwise,
    /// Post all sends, then receive (custom p2p exchange style).
    Direct,
    /// Bruck log-P store-and-forward; best for small blocks at scale.
    Bruck,
    /// Choose per call from communicator size and message size.
    Adaptive,
}

/// Size-bin thresholds for [`AllToAllAlgo::Adaptive`], expressed as
/// [`sizebins`] bucket indices so the selection table lines up with the
/// trace histograms that motivated it.
///
/// Blocks in buckets `..= BRUCK_MAX_BUCKET` (≤256 B) are latency-bound:
/// ⌈log₂P⌉ aggregated messages beat P−1 tiny ones once P is at least
/// [`BRUCK_MIN_RANKS`]. Blocks in buckets `>= PAIRWISE_MIN_BUCKET`
/// (≥32 KiB) are bandwidth-bound: the scheduled pairwise exchange keeps
/// each link to one transfer at a time. Between the two, Direct's
/// unsynchronized posts win.
pub const BRUCK_MAX_BUCKET: usize = 8; // ≤256 B
/// See [`BRUCK_MAX_BUCKET`].
pub const BRUCK_MIN_RANKS: usize = 8;
/// See [`BRUCK_MAX_BUCKET`].
pub const PAIRWISE_MIN_BUCKET: usize = 15; // ≥32 KiB

/// Tag bases for Bruck phases. Far above the small step-distance tags
/// Pairwise/Direct use, so a Bruck exchange can never cross-match an
/// adjacent pairwise collective on the shadow channel.
const BRUCK_TAG: u64 = 0x4252_5543_0000; // "BRUC"
const BRUCK_HDR_TAG: u64 = 0x4252_4844_0000; // "BRHD"

/// Resolve [`AllToAllAlgo::Adaptive`] for a *regular* exchange with
/// uniform `block_bytes` per destination. Every rank computes the same
/// answer (the inputs are communicator-wide constants), which makes
/// even the globally-coordinated Bruck safe to select locally.
fn resolve_regular(p: usize, block_bytes: u64) -> AllToAllAlgo {
    let bucket = sizebins::bucket_of(block_bytes);
    if p >= BRUCK_MIN_RANKS && bucket <= BRUCK_MAX_BUCKET {
        AllToAllAlgo::Bruck
    } else if bucket >= PAIRWISE_MIN_BUCKET {
        AllToAllAlgo::Pairwise
    } else {
        AllToAllAlgo::Direct
    }
}

/// Resolve [`AllToAllAlgo::Adaptive`] for an *irregular* exchange from
/// this rank's local send volume. Ranks may disagree — Pairwise and
/// Direct post identical message sets with identical tags, so a mixed
/// world still matches up. Bruck is deliberately excluded here: it
/// reroutes payloads through intermediate ranks and must be chosen by
/// every rank or none.
fn resolve_irregular(p: usize, total_bytes: u64) -> AllToAllAlgo {
    let per_dest = total_bytes / p.max(1) as u64;
    if sizebins::bucket_of(per_dest) >= PAIRWISE_MIN_BUCKET {
        AllToAllAlgo::Pairwise
    } else {
        AllToAllAlgo::Direct
    }
}

/// Telemetry code for a resolved algorithm (for Chrome-trace op spans).
fn algo_code(algo: AllToAllAlgo) -> u8 {
    match algo {
        AllToAllAlgo::Pairwise => algos::PAIRWISE,
        AllToAllAlgo::Direct => algos::DIRECT,
        AllToAllAlgo::Bruck => algos::BRUCK,
        AllToAllAlgo::Adaptive => algos::NONE, // resolved before stamping
    }
}

/// Regular all-to-all: `blocks[d]` goes to rank `d`; returns blocks
/// indexed by source rank. All ranks must pass exactly `size()` blocks.
pub fn alltoall<T: CommData + Clone>(
    comm: &Communicator,
    blocks: Vec<Vec<T>>,
    algo: AllToAllAlgo,
) -> Result<Vec<Vec<T>>, CommError> {
    comm.coll_begin(OpKind::Alltoall);
    let mut span = comm.telemetry().op(CommOp::Alltoall);
    span.bytes(block_bytes(&blocks));
    comm.check_group_alive()?;
    let algo = match algo {
        AllToAllAlgo::Adaptive => {
            let per_block = blocks
                .first()
                .map(|b| std::mem::size_of_val(b.as_slice()) as u64)
                .unwrap_or(0);
            resolve_regular(comm.size(), per_block)
        }
        a => a,
    };
    span.algo(algo_code(algo));
    exchange(comm, blocks, algo, OpKind::Alltoall)
}

/// Irregular all-to-all: per-destination block lengths may differ and may
/// be zero. Zero-length blocks are still exchanged (as zero-byte
/// messages), keeping the message-matching schedule deterministic.
pub fn alltoallv<T: CommData + Clone>(
    comm: &Communicator,
    blocks: Vec<Vec<T>>,
) -> Result<Vec<Vec<T>>, CommError> {
    alltoallv_with(comm, blocks, AllToAllAlgo::Pairwise)
}

/// [`alltoallv`] with an explicit algorithm choice.
pub fn alltoallv_with<T: CommData + Clone>(
    comm: &Communicator,
    blocks: Vec<Vec<T>>,
    algo: AllToAllAlgo,
) -> Result<Vec<Vec<T>>, CommError> {
    comm.coll_begin(OpKind::Alltoallv);
    let mut span = comm.telemetry().op(CommOp::Alltoallv);
    let total = block_bytes(&blocks);
    span.bytes(total);
    comm.check_group_alive()?;
    let algo = match algo {
        AllToAllAlgo::Adaptive => resolve_irregular(comm.size(), total),
        a => a,
    };
    span.algo(algo_code(algo));
    exchange(comm, blocks, algo, OpKind::Alltoallv)
}

/// Total payload bytes this rank contributes to an exchange.
fn block_bytes<T>(blocks: &[Vec<T>]) -> u64 {
    blocks
        .iter()
        .map(|b| std::mem::size_of_val(b.as_slice()) as u64)
        .sum()
}

fn exchange<T: CommData + Clone>(
    comm: &Communicator,
    mut blocks: Vec<Vec<T>>,
    algo: AllToAllAlgo,
    kind: OpKind,
) -> Result<Vec<Vec<T>>, CommError> {
    let p = comm.size();
    let r = comm.rank();
    assert_eq!(blocks.len(), p, "alltoall: need exactly one block per rank");
    // Stamp the resolved algorithm for the duration of the exchange so
    // the per-phase communication matrix attributes each send round to
    // pairwise/direct/Bruck.
    let _algo_scope = comm.telemetry().algo_scope(algo_code(algo));
    if let AllToAllAlgo::Bruck = algo {
        // The regular alltoall's contract fixes one block length for the
        // whole communicator (the same invariant the Adaptive resolver
        // leans on), so Bruck can skip its per-phase length headers —
        // halving its message count in exactly the latency-bound regime
        // it exists for. The irregular variant always ships headers.
        let uniform_len = match kind {
            OpKind::Alltoall => blocks.first().map(Vec::len),
            _ => None,
        };
        return bruck(comm, blocks, kind, uniform_len);
    }
    let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    out[r] = std::mem::take(&mut blocks[r]);
    match algo {
        AllToAllAlgo::Pairwise => {
            for s in 1..p {
                let dst = (r + s) % p;
                let src = (r + p - s) % p;
                let block = std::mem::take(&mut blocks[dst]);
                comm.coll_send(dst, s as u64, block, kind);
                out[src] = comm.try_coll_recv::<T>(src, s as u64, "alltoall")?;
            }
        }
        AllToAllAlgo::Direct => {
            // Post every send up front (buffered), then drain receives.
            // Tag by *step distance* so the matching schedule is identical
            // to Pairwise and repeated alltoalls cannot cross-match.
            for s in 1..p {
                let dst = (r + s) % p;
                let block = std::mem::take(&mut blocks[dst]);
                comm.coll_send(dst, s as u64, block, kind);
            }
            for s in 1..p {
                let src = (r + p - s) % p;
                out[src] = comm.try_coll_recv::<T>(src, s as u64, "alltoall")?;
            }
        }
        AllToAllAlgo::Bruck | AllToAllAlgo::Adaptive => {
            unreachable!("resolved before exchange")
        }
    }
    Ok(out)
}

/// Bruck store-and-forward all-to-all in ⌈log₂P⌉ rounds.
///
/// 1. *Rotate*: slot `i` holds the block destined for rank `(r+i) mod P`.
/// 2. *Phases*: for `dist = 1, 2, 4, …` rank `r` forwards every slot
///    whose index has the `dist` bit set to rank `(r+dist) mod P` as one
///    aggregated message, and receives the matching slots from
///    `(r−dist) mod P`. After all phases, slot `i` holds the block *from*
///    rank `(r−i) mod P` — every block reached its destination through
///    at most log₂P hops.
/// 3. *Inverse rotate*: `out[(r+P−i) mod P] = slot[i]`.
///
/// For the irregular variant block lengths change as foreign blocks
/// pass through, so each phase sends a small length header ahead of the
/// aggregated payload. The regular alltoall passes `uniform_len` — its
/// contract guarantees every block in the communicator has that length,
/// forwarding preserves it, and the headers (and their per-message
/// latency) disappear: one message per phase.
fn bruck<T: CommData + Clone>(
    comm: &Communicator,
    blocks: Vec<Vec<T>>,
    kind: OpKind,
    uniform_len: Option<usize>,
) -> Result<Vec<Vec<T>>, CommError> {
    if let Some(n) = uniform_len {
        return bruck_uniform(comm, blocks, kind, n);
    }
    bruck_general(comm, blocks, kind)
}

/// Uniform-length Bruck: all slots live in one contiguous slab, so a
/// phase costs a single payload allocation (the typed receive hands the
/// sender's Vec over by pointer) instead of re-boxing every forwarded
/// slot. This is the latency-critical regime — small blocks at scale —
/// so the allocator traffic saved here is the point of the algorithm.
fn bruck_uniform<T: CommData + Clone>(
    comm: &Communicator,
    mut blocks: Vec<Vec<T>>,
    kind: OpKind,
    n: usize,
) -> Result<Vec<Vec<T>>, CommError> {
    let p = comm.size();
    let r = comm.rank();
    // slab[i*n..(i+1)*n] is slot i: the block for rank (r+i) mod p.
    let mut slab: Vec<T> = Vec::with_capacity(p * n);
    for i in 0..p {
        let b = std::mem::take(&mut blocks[(r + i) % p]);
        debug_assert_eq!(b.len(), n, "regular alltoall requires uniform blocks");
        slab.extend(b);
    }
    let mut dist = 1;
    let mut phase = 0u64;
    while dist < p {
        let dst = (r + dist) % p;
        let src = (r + p - dist) % p;
        let idxs: Vec<usize> = (1..p).filter(|i| i & dist != 0).collect();
        let mut payload: Vec<T> = Vec::with_capacity(idxs.len() * n);
        for &i in &idxs {
            payload.extend_from_slice(&slab[i * n..(i + 1) * n]);
        }
        comm.coll_send(dst, BRUCK_TAG + phase, payload, kind);
        let incoming: Vec<T> = comm.try_coll_recv(src, BRUCK_TAG + phase, "alltoall")?;
        debug_assert_eq!(incoming.len(), idxs.len() * n);
        for (k, &i) in idxs.iter().enumerate() {
            slab[i * n..(i + 1) * n].clone_from_slice(&incoming[k * n..(k + 1) * n]);
        }
        dist <<= 1;
        phase += 1;
    }
    // Slot i now holds the block from rank (r−i) mod p; undo the rotation.
    let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    for (i, chunk) in slab.chunks(n.max(1)).enumerate().take(p) {
        out[(r + p - i) % p] = chunk.to_vec();
    }
    Ok(out)
}

/// General (irregular-capable) Bruck: slots are individually boxed and
/// every phase ships a length header ahead of the payload.
fn bruck_general<T: CommData + Clone>(
    comm: &Communicator,
    mut blocks: Vec<Vec<T>>,
    kind: OpKind,
) -> Result<Vec<Vec<T>>, CommError> {
    let p = comm.size();
    let r = comm.rank();
    // Rotate so slot i is the block for rank (r+i) mod p; slot 0 (our own
    // block) never moves.
    let mut slots: Vec<Vec<T>> = (0..p)
        .map(|i| std::mem::take(&mut blocks[(r + i) % p]))
        .collect();
    let mut dist = 1;
    let mut phase = 0u64;
    while dist < p {
        let dst = (r + dist) % p;
        let src = (r + p - dist) % p;
        let idxs: Vec<usize> = (1..p).filter(|i| i & dist != 0).collect();
        let payload: Vec<T> = idxs
            .iter()
            .flat_map(|&i| slots[i].iter().cloned())
            .collect();
        let lens: Vec<u64> = idxs.iter().map(|&i| slots[i].len() as u64).collect();
        comm.coll_send(dst, BRUCK_HDR_TAG + phase, lens, kind);
        comm.coll_send(dst, BRUCK_TAG + phase, payload, kind);
        let in_lens: Vec<u64> = comm.try_coll_recv(src, BRUCK_HDR_TAG + phase, "alltoallv")?;
        let incoming: Vec<T> = comm.try_coll_recv(src, BRUCK_TAG + phase, "alltoallv")?;
        debug_assert_eq!(in_lens.len(), idxs.len());
        let mut rest = incoming.as_slice();
        for (&i, &n) in idxs.iter().zip(&in_lens) {
            let (head, tail) = rest.split_at(n as usize);
            rest = tail;
            slots[i] = head.to_vec();
        }
        dist <<= 1;
        phase += 1;
    }
    // Slot i now holds the block from rank (r−i) mod p; undo the rotation.
    let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    for (i, slot) in slots.into_iter().enumerate() {
        out[(r + p - i) % p] = slot;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::{resolve_irregular, resolve_regular, AllToAllAlgo};
    use crate::trace::OpKind;
    use crate::world::World;

    /// Every rank sends `[r, d]` to rank `d`; verify receipt from all.
    fn roundtrip(p: usize, algo: AllToAllAlgo) {
        let out = World::builder(p).run(move |c| {
            let send: Vec<u64> = (0..p)
                .flat_map(|d| [c.rank() as u64, d as u64])
                .collect();
            c.alltoall_with(&send, algo)
        });
        for (r, flat) in out.into_iter().enumerate() {
            for (src, block) in flat.chunks(2).enumerate() {
                assert_eq!(block, [src as u64, r as u64], "p={p} algo={algo:?}");
            }
        }
    }

    #[test]
    fn pairwise_all_sizes() {
        for p in [1, 2, 3, 4, 5, 8] {
            roundtrip(p, AllToAllAlgo::Pairwise);
        }
    }

    #[test]
    fn direct_all_sizes() {
        for p in [1, 2, 3, 4, 5, 8] {
            roundtrip(p, AllToAllAlgo::Direct);
        }
    }

    #[test]
    fn bruck_all_sizes_including_non_powers_of_two() {
        for p in [1, 2, 3, 4, 5, 6, 7, 8, 9, 16] {
            roundtrip(p, AllToAllAlgo::Bruck);
        }
    }

    #[test]
    fn adaptive_all_sizes() {
        for p in [1, 2, 3, 4, 5, 8, 9] {
            roundtrip(p, AllToAllAlgo::Adaptive);
        }
    }

    #[test]
    fn adaptive_resolution_follows_size_table() {
        use AllToAllAlgo::*;
        // Small blocks at scale: Bruck; small worlds never Bruck.
        assert_eq!(resolve_regular(16, 64), Bruck);
        assert_eq!(resolve_regular(8, 256), Bruck);
        assert_eq!(resolve_regular(4, 64), Direct);
        // Mid sizes: Direct. Large: Pairwise.
        assert_eq!(resolve_regular(16, 4096), Direct);
        assert_eq!(resolve_regular(16, 32 * 1024), Pairwise);
        assert_eq!(resolve_regular(2, 1 << 20), Pairwise);
        // Irregular never picks Bruck, even tiny at scale.
        assert_eq!(resolve_irregular(16, 16 * 64), Direct);
        assert_eq!(resolve_irregular(4, 4 * 64 * 1024), Pairwise);
    }

    #[test]
    fn alltoallv_with_empty_and_ragged_blocks() {
        let out = World::builder(4).run(|c| {
            // Rank r sends r+1 copies of its rank to each destination of
            // higher rank, nothing to lower ranks.
            let counts: Vec<usize> = (0..4)
                .map(|d| if d > c.rank() { c.rank() + 1 } else { 0 })
                .collect();
            let send = vec![c.rank() as u32; counts.iter().sum()];
            c.alltoallv(&send, &counts)
        });
        for (r, (flat, rcounts)) in out.into_iter().enumerate() {
            let mut rest = flat.as_slice();
            for (src, &n) in rcounts.iter().enumerate() {
                let (block, tail) = rest.split_at(n);
                rest = tail;
                if src < r {
                    assert_eq!(block, vec![src as u32; src + 1]);
                } else {
                    assert!(block.is_empty());
                }
            }
        }
    }

    /// Some destinations get zero elements; every algorithm must agree
    /// on the result at several world sizes.
    fn alltoallv_zero_blocks(p: usize, algo: AllToAllAlgo) {
        let out = World::builder(p).run(move |c| {
            // Rank r sends r+1 copies of (r*P+d) to each *even* rank d,
            // nothing to odd ranks.
            let counts: Vec<usize> = (0..p)
                .map(|d| if d % 2 == 0 { c.rank() + 1 } else { 0 })
                .collect();
            let send: Vec<u64> = (0..p)
                .flat_map(|d| vec![(c.rank() * p + d) as u64; counts[d]])
                .collect();
            c.alltoallv_with(&send, &counts, algo)
        });
        for (r, (flat, rcounts)) in out.into_iter().enumerate() {
            assert_eq!(rcounts.len(), p, "p={p} algo={algo:?}");
            let mut rest = flat.as_slice();
            for (src, &n) in rcounts.iter().enumerate() {
                let (block, tail) = rest.split_at(n);
                rest = tail;
                if r % 2 == 0 {
                    assert_eq!(n, src + 1, "p={p} algo={algo:?}");
                    assert_eq!(
                        block,
                        vec![(src * p + r) as u64; src + 1],
                        "p={p} algo={algo:?}"
                    );
                } else {
                    assert!(block.is_empty(), "p={p} algo={algo:?}");
                }
            }
        }
    }

    #[test]
    fn alltoallv_zero_length_blocks_all_algorithms() {
        for p in [2, 6, 16] {
            for algo in [
                AllToAllAlgo::Pairwise,
                AllToAllAlgo::Direct,
                AllToAllAlgo::Bruck,
                AllToAllAlgo::Adaptive,
            ] {
                alltoallv_zero_blocks(p, algo);
            }
        }
    }

    #[test]
    fn alltoall_message_counts() {
        let (_, trace) = World::builder(4).run_traced(|c| {
            let _ = c.alltoall(&[0f64; 40]); // 10 elements per destination
        });
        for r in 0..4 {
            let s = trace.rank(r).get(OpKind::Alltoall);
            assert_eq!(s.calls, 1);
            assert_eq!(s.messages, 3);
            assert_eq!(s.bytes, 3 * 80);
        }
    }

    #[test]
    fn bruck_sends_log_p_aggregated_messages() {
        let (_, trace) = World::builder(8).run_traced(|c| {
            let _ = c.alltoall_with(&[0u8; 8], AllToAllAlgo::Bruck);
            let _ = c.alltoallv_with(&[0u8; 8], &[1; 8], AllToAllAlgo::Bruck);
        });
        for r in 0..8 {
            // Regular: log2(8) = 3 phases, one aggregated payload each
            // (uniform blocks, headers elided) vs 7 messages for
            // Pairwise/Direct.
            let s = trace.rank(r).get(OpKind::Alltoall);
            assert_eq!(s.calls, 1);
            assert_eq!(s.messages, 3);
            // Irregular: lengths vary in flight, so each phase ships a
            // length header ahead of the payload.
            let v = trace.rank(r).get(OpKind::Alltoallv);
            assert_eq!(v.calls, 1);
            assert_eq!(v.messages, 6);
        }
    }

    #[test]
    fn repeated_alltoalls_do_not_cross_match() {
        World::builder(3).run(|c| {
            for i in 0..10u64 {
                let send: Vec<u64> = (0..3).map(|d| i * 100 + d).collect();
                let got = c.alltoall(&send);
                assert_eq!(got, vec![i * 100 + c.rank() as u64; 3], "iter {i}");
            }
        });
    }

    #[test]
    fn repeated_bruck_exchanges_do_not_cross_match() {
        World::builder(6).run(|c| {
            for i in 0..10u64 {
                let send: Vec<u64> = (0..6).map(|d| i * 100 + d).collect();
                let got = c.alltoall_with(&send, AllToAllAlgo::Bruck);
                assert_eq!(got, vec![i * 100 + c.rank() as u64; 6], "iter {i}");
            }
        });
    }

    #[test]
    fn mixed_pairwise_and_direct_ranks_interoperate() {
        // Pairwise and Direct post identical message sets with identical
        // tags, so an irregular-adaptive world where ranks disagree must
        // still complete. Force maximal disagreement explicitly.
        let out = World::builder(5).run(|c| {
            let algo = if c.rank() % 2 == 0 {
                AllToAllAlgo::Pairwise
            } else {
                AllToAllAlgo::Direct
            };
            let send: Vec<i32> = (0..5).map(|d| (c.rank() * 5 + d) as i32).collect();
            c.alltoall_with(&send, algo)
        });
        for (r, flat) in out.into_iter().enumerate() {
            let expect: Vec<i32> = (0..5).map(|s| (s * 5 + r) as i32).collect();
            assert_eq!(flat, expect);
        }
    }

    #[test]
    fn direct_and_pairwise_agree() {
        for p in [2usize, 5, 6] {
            let a = World::builder(p).run(move |c| {
                let send: Vec<i32> = (0..p).map(|d| (c.rank() * p + d) as i32).collect();
                c.alltoall_with(&send, AllToAllAlgo::Pairwise)
            });
            let b = World::builder(p).run(move |c| {
                let send: Vec<i32> = (0..p).map(|d| (c.rank() * p + d) as i32).collect();
                c.alltoall_with(&send, AllToAllAlgo::Direct)
            });
            assert_eq!(a, b);
        }
    }
}
