//! Model-order selection.
//!
//! The paper's C++ uses template tags (`Order::Low/Medium/High`) to pick
//! specialized derivative kernels at compile time; the idiomatic Rust
//! equivalent here is an enum dispatched once per derivative evaluation
//! (the dispatch cost is nothing next to a transform or force sum).

use beatnik_json::impl_json_unit_enum;
use std::fmt;
use std::str::FromStr;

/// Which Z-Model order to solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Order {
    /// Fourier (Riesz) interface velocity + spectral vorticity terms.
    /// Periodic boundaries only. Exercises distributed-FFT all-to-all.
    Low,
    /// Birkhoff–Rott interface velocity + spectral vorticity terms.
    /// Periodic boundaries only. Exercises both comm patterns.
    Medium,
    /// Birkhoff–Rott interface velocity + stencil vorticity terms.
    /// Any boundary. Exercises BR-solver communication and halos.
    High,
}

impl_json_unit_enum!(Order { Low, Medium, High });

impl Order {
    /// Whether this order requires the distributed FFT (and therefore
    /// periodic boundaries).
    pub fn needs_fft(&self) -> bool {
        matches!(self, Order::Low | Order::Medium)
    }

    /// Whether this order requires a far-field (BR) solver.
    pub fn needs_br_solver(&self) -> bool {
        matches!(self, Order::Medium | Order::High)
    }
}

impl fmt::Display for Order {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Order::Low => write!(f, "low"),
            Order::Medium => write!(f, "medium"),
            Order::High => write!(f, "high"),
        }
    }
}

impl FromStr for Order {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "low" | "l" => Ok(Order::Low),
            "medium" | "m" => Ok(Order::Medium),
            "high" | "h" => Ok(Order::High),
            other => Err(format!("unknown model order '{other}' (low|medium|high)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix() {
        assert!(Order::Low.needs_fft());
        assert!(!Order::Low.needs_br_solver());
        assert!(Order::Medium.needs_fft());
        assert!(Order::Medium.needs_br_solver());
        assert!(!Order::High.needs_fft());
        assert!(Order::High.needs_br_solver());
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for o in [Order::Low, Order::Medium, Order::High] {
            assert_eq!(o.to_string().parse::<Order>().unwrap(), o);
        }
        assert_eq!("H".parse::<Order>().unwrap(), Order::High);
        assert!("ultra".parse::<Order>().is_err());
    }
}
