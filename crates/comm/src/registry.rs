//! The shared routing table mapping `(communicator id, rank)` to mailboxes.
//!
//! A [`Registry`] is created per [`crate::World`] and shared (via `Arc`) by
//! every rank thread. Mailboxes are created lazily on first use so that
//! communicators produced by `split` need no global setup phase: the first
//! send to — or receive on — a `(comm, rank)` address materializes its
//! mailbox.
//!
//! The registry is also the world's **failure ledger** (the shared-memory
//! analogue of an MPI runtime's out-of-band failure detector): a dying
//! rank marks itself failed here, every mailbox is interrupted so blocked
//! receives re-check the ledger, and revoked communicator ids and agreed
//! shrink ids live here so all survivors converge on the same recovery
//! state without extra messages.

use crate::mailbox::Mailbox;
use crate::message::Envelope;
use crate::sync::{Mutex, RwLock};
use crate::transport::{CtrlMsg, Route, Transport};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Identifier of a communicator within one `World`.
pub type CommId = u64;

/// The id of the world communicator every rank starts with.
pub const WORLD_COMM_ID: CommId = 0;

/// Routing table shared by all ranks of a world.
pub struct Registry {
    mailboxes: RwLock<HashMap<(CommId, usize), Arc<Mailbox>>>,
    next_comm_id: AtomicU64,
    /// Set when any rank panics, so ranks blocked in receives fail fast
    /// instead of waiting out their full timeout.
    abort: AtomicBool,
    /// World ranks marked dead, with the instant each was first marked
    /// (the reference point for detection-latency measurements).
    failed: Mutex<HashMap<usize, Instant>>,
    /// Communicator ids revoked ULFM-style: every pending and future
    /// operation on them errors with [`crate::CommError::Revoked`].
    revoked: RwLock<HashSet<CommId>>,
    /// Count of revocations ever issued in this world. Communicators
    /// snapshot it at construction; one created *before* a revocation
    /// treats itself as revoked too. This is the propagation mechanism
    /// ULFM gets from out-of-band runtime messages: a rank blocked on a
    /// derived sub-communicator whose group does not contain the failed
    /// rank would otherwise never learn the world is being torn down and
    /// would sit out its full receive deadline. Communicators created
    /// after the revocation (the fresh child a `shrink` builds) observe
    /// an unchanged epoch and are unaffected.
    revoke_epoch: AtomicU64,
    /// Interned `(parent, survivor world ranks) -> child id` so every
    /// survivor of a `shrink` lands on the same fresh communicator id
    /// without communicating (they all observe the same failed set).
    shrink_ids: Mutex<HashMap<(CommId, Vec<usize>), CommId>>,
    /// The world's metrics plane, installed by the `World` runners after
    /// every per-rank publisher exists. `None` only for registries built
    /// outside a `World` (unit tests, ad-hoc harnesses).
    metrics: Mutex<Option<Arc<crate::metrics::MetricsPlane>>>,
    /// The transport carrying envelopes between ranks, installed by the
    /// `World` runners (or the `proc` launcher) before rank code runs.
    /// `None` means direct mailbox delivery — the behavior raw-registry
    /// unit tests and ad-hoc harnesses have always had.
    transport: RwLock<Option<Arc<dyn Transport>>>,
    /// When set (multi-process worlds), `shrink_id` derives child ids by
    /// hashing instead of interning from the local counter, so survivors
    /// in *different processes* — which cannot share an interning table —
    /// still converge on the same id.
    deterministic_ids: AtomicBool,
}

impl Registry {
    /// Create a registry with the world communicator id reserved.
    pub fn new() -> Self {
        Registry {
            mailboxes: RwLock::new(HashMap::new()),
            next_comm_id: AtomicU64::new(WORLD_COMM_ID + 1),
            abort: AtomicBool::new(false),
            failed: Mutex::new(HashMap::new()),
            revoked: RwLock::new(HashSet::new()),
            revoke_epoch: AtomicU64::new(0),
            shrink_ids: Mutex::new(HashMap::new()),
            metrics: Mutex::new(None),
            transport: RwLock::new(None),
            deterministic_ids: AtomicBool::new(false),
        }
    }

    /// Install the world's metrics plane (once, at world setup).
    pub fn install_metrics(&self, plane: Arc<crate::metrics::MetricsPlane>) {
        *self.metrics.lock() = Some(plane);
    }

    /// Install the transport that carries envelopes between ranks (once,
    /// at world setup, before any rank code runs).
    pub fn install_transport(&self, transport: Arc<dyn Transport>) {
        *self.transport.write() = Some(transport);
    }

    /// The installed transport, if any.
    pub fn transport(&self) -> Option<Arc<dyn Transport>> {
        self.transport.read().clone()
    }

    /// Route one envelope through the installed transport; with none
    /// installed, fall back to a direct mailbox push (the historical
    /// in-process behavior raw-registry harnesses rely on).
    pub fn deliver(&self, route: Route, env: Envelope) {
        match self.transport.read().as_ref() {
            Some(t) => t.deliver(self, route, env),
            None => self.mailbox(route.comm, route.dst_local).push(env),
        }
    }

    /// Switch `shrink_id` to hash-derived ids (multi-process worlds; see
    /// the `deterministic_ids` field).
    pub fn set_deterministic_ids(&self) {
        self.deterministic_ids.store(true, Ordering::SeqCst);
    }

    /// Broadcast failure-ledger news through the transport, if one is
    /// installed and has peers to tell.
    fn publish_ctrl(&self, msg: CtrlMsg) {
        if let Some(t) = self.transport.read().as_ref() {
            t.publish_ctrl(msg);
        }
    }

    /// Fold remotely-published ledger news into this registry *without*
    /// re-publishing (the news arrived over the wire; echoing it back
    /// would ping-pong forever).
    pub fn apply_remote_ctrl(&self, msg: CtrlMsg) {
        match msg {
            CtrlMsg::Failed(rank) => {
                self.failed.lock().entry(rank).or_insert_with(Instant::now);
                self.interrupt_all();
            }
            CtrlMsg::Revoke(comm) => {
                if self.revoked.write().insert(comm) {
                    self.revoke_epoch.fetch_add(1, Ordering::SeqCst);
                }
                self.interrupt_all();
            }
            CtrlMsg::Abort => {
                self.abort.store(true, Ordering::SeqCst);
                self.interrupt_all();
            }
            // Clean goodbyes matter to connection-oriented transports
            // (they suppress failure detection on the coming EOF), not
            // to the ledger.
            CtrlMsg::Bye(_) => {}
        }
    }

    /// The world's metrics plane, if one was installed.
    pub fn metrics_plane(&self) -> Option<Arc<crate::metrics::MetricsPlane>> {
        self.metrics.lock().clone()
    }

    /// Mark the world as aborting (a rank panicked).
    pub fn signal_abort(&self) {
        let fresh = !self.abort.swap(true, Ordering::SeqCst);
        if fresh {
            self.publish_ctrl(CtrlMsg::Abort);
        }
    }

    /// Whether a rank has panicked and the world is tearing down.
    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    /// Mark a world rank dead and interrupt every mailbox so blocked
    /// receives observe the failure promptly. Idempotent: the first mark
    /// wins, keeping the original failure instant.
    pub fn mark_failed(&self, world_rank: usize) {
        let fresh = {
            let mut failed = self.failed.lock();
            match failed.entry(world_rank) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(Instant::now());
                    true
                }
                std::collections::hash_map::Entry::Occupied(_) => false,
            }
        };
        self.interrupt_all();
        if fresh {
            // Publish outside the ledger lock: a transport may fold its
            // own bookkeeping into the broadcast.
            self.publish_ctrl(CtrlMsg::Failed(world_rank));
        }
    }

    /// Whether any rank has been marked failed.
    pub fn any_failed(&self) -> bool {
        !self.failed.lock().is_empty()
    }

    /// Whether a specific world rank has been marked failed.
    pub fn is_failed(&self, world_rank: usize) -> bool {
        self.failed.lock().contains_key(&world_rank)
    }

    /// Sorted snapshot of the failed world ranks.
    pub fn failed_snapshot(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.failed.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// When `world_rank` was first marked failed, if it has been.
    pub fn failed_at(&self, world_rank: usize) -> Option<Instant> {
        self.failed.lock().get(&world_rank).copied()
    }

    /// Revoke a communicator: all its pending and future operations error
    /// with `CommError::Revoked`. Also advances the revoke epoch so every
    /// communicator that existed before this call — including derived
    /// sub-communicators whose groups are disjoint from the failure —
    /// observes the revocation, and interrupts every mailbox so sleepers
    /// re-check promptly.
    pub fn revoke(&self, comm: CommId) {
        let fresh = self.revoked.write().insert(comm);
        if fresh {
            self.revoke_epoch.fetch_add(1, Ordering::SeqCst);
        }
        self.interrupt_all();
        if fresh {
            self.publish_ctrl(CtrlMsg::Revoke(comm));
        }
    }

    /// Whether a communicator id has been revoked directly.
    pub fn is_revoked(&self, comm: CommId) -> bool {
        self.revoked.read().contains(&comm)
    }

    /// Number of revocations issued so far (see the `revoke_epoch` field).
    pub fn revoke_epoch(&self) -> u64 {
        self.revoke_epoch.load(Ordering::SeqCst)
    }

    /// The communicator id every survivor of a `shrink` of `parent` with
    /// the given surviving world ranks agrees on, allocating it on first
    /// ask. Survivors need not communicate: they all observe the same
    /// failed set, compute the same key, and intern the same id.
    pub fn shrink_id(&self, parent: CommId, survivors: &[usize]) -> CommId {
        if self.deterministic_ids.load(Ordering::SeqCst) {
            // Multi-process worlds cannot share an interning table, so
            // derive the id as an FNV hash of the key. Bit 62 marks the
            // id as hash-allocated (counter ids stay far below it); bit
            // 63 stays clear — it is the collective-channel bit.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            let mut mix = |v: u64| {
                h ^= v;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            };
            mix(parent);
            for &s in survivors {
                mix(s as u64 + 1);
            }
            return (h & !(1 << 63)) | (1 << 62);
        }
        let mut ids = self.shrink_ids.lock();
        *ids.entry((parent, survivors.to_vec()))
            .or_insert_with(|| self.allocate_comm_ids(1))
    }

    /// Wake every sleeping waiter in every mailbox so they re-check the
    /// failure ledger.
    fn interrupt_all(&self) {
        for mb in self.mailboxes.read().values() {
            mb.interrupt();
        }
    }

    /// Fetch the mailbox for `(comm, rank)`, creating it if needed.
    pub fn mailbox(&self, comm: CommId, rank: usize) -> Arc<Mailbox> {
        if let Some(mb) = self.mailboxes.read().get(&(comm, rank)) {
            return Arc::clone(mb);
        }
        let mut w = self.mailboxes.write();
        Arc::clone(
            w.entry((comm, rank))
                .or_insert_with(|| Arc::new(Mailbox::new())),
        )
    }

    /// Allocate a contiguous block of `n` fresh communicator ids and return
    /// the first. Used by `split`, where rank 0 of the parent allocates one
    /// id per color group and broadcasts the base so every member of each
    /// group deterministically agrees on its new communicator id.
    pub fn allocate_comm_ids(&self, n: u64) -> CommId {
        self.next_comm_id.fetch_add(n, Ordering::Relaxed)
    }

    /// Number of mailboxes currently materialized (diagnostics only).
    pub fn mailbox_count(&self) -> usize {
        self.mailboxes.read().len()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailboxes_are_created_lazily_and_shared() {
        let reg = Registry::new();
        assert_eq!(reg.mailbox_count(), 0);
        let a = reg.mailbox(0, 1);
        let b = reg.mailbox(0, 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.mailbox_count(), 1);
        let _c = reg.mailbox(3, 1);
        assert_eq!(reg.mailbox_count(), 2);
    }

    #[test]
    fn comm_id_blocks_are_disjoint_and_never_world() {
        let reg = Registry::new();
        let a = reg.allocate_comm_ids(4);
        let b = reg.allocate_comm_ids(2);
        assert!(a > WORLD_COMM_ID);
        assert!(b >= a + 4);
    }

    #[test]
    fn failure_ledger_is_idempotent_and_sorted() {
        let reg = Registry::new();
        assert!(!reg.any_failed());
        assert_eq!(reg.failed_snapshot(), Vec::<usize>::new());
        reg.mark_failed(3);
        let t0 = reg.failed_at(3).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        reg.mark_failed(3); // second mark must not move the timestamp
        assert_eq!(reg.failed_at(3), Some(t0));
        reg.mark_failed(1);
        assert!(reg.any_failed());
        assert!(reg.is_failed(1) && reg.is_failed(3) && !reg.is_failed(0));
        assert_eq!(reg.failed_snapshot(), vec![1, 3]);
    }

    #[test]
    fn revocation_and_shrink_ids_are_stable() {
        let reg = Registry::new();
        assert!(!reg.is_revoked(7));
        assert_eq!(reg.revoke_epoch(), 0);
        reg.revoke(7);
        assert!(reg.is_revoked(7));
        // Each revocation advances the epoch so pre-existing communicators
        // (which snapshot it at construction) observe the teardown.
        assert_eq!(reg.revoke_epoch(), 1);
        reg.revoke(9);
        assert_eq!(reg.revoke_epoch(), 2);
        // Every survivor asking for the same (parent, survivors) key must
        // intern the same fresh id; a different survivor set gets its own.
        let a = reg.shrink_id(0, &[0, 1, 3]);
        let b = reg.shrink_id(0, &[0, 1, 3]);
        let c = reg.shrink_id(0, &[0, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a > WORLD_COMM_ID && c > WORLD_COMM_ID);
    }
}
