//! The `beatnik-serve` job runner: executes one dispatch epoch of a
//! submitted job as a real rocket-rig simulation on a
//! [`World`]-constructed gang of ranks.
//!
//! ## Control agreement
//!
//! Preempt/cancel flags are plain atomics set by scheduler threads, so
//! different ranks could observe a flip at different steps and diverge
//! (some checkpointing, others stepping on — a deadlock in the next
//! collective). To keep the gang in lockstep, rank 0 alone reads the
//! flags at each step boundary and **broadcasts a one-byte verdict**
//! (`GO`/`YIELD`/`STOP`); every rank acts on the broadcast value, never
//! on the atomics directly. The broadcast rides the job's own world,
//! so it is counted in the job's communication totals like any other
//! collective.
//!
//! ## Preemption and elastic resume
//!
//! On `YIELD` the gang writes a collective checkpoint
//! ([`beatnik_io::checkpoint::save`] — rank 0 gathers and atomically
//! writes the full surface) and returns. The checkpoint records the
//! global surface, not a per-rank decomposition, so the next epoch can
//! rebuild the solver at **any** gang size — this is what lets the
//! scheduler resume a preempted 8-rank job on the 2 slots that happen
//! to be free.
//!
//! Jobs with a fault plan run [`run_rig_ft`] instead: their recovery
//! protocol owns the communicator mid-step (revoke/shrink/restart), so
//! they ignore preemption and only honor cancel between dispatches.

use crate::{run_rig_ft, Deck, RigConfig, FT_RECV_TIMEOUT};
use beatnik_comm::{Communicator, TransportKind, World, WorldTimeline};
use beatnik_core::{Diagnostics, Order, Solver};
use beatnik_serve::scheduler::{JobContext, JobOutcome, JobRunner};
use beatnik_serve::JobSpec;
use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Per-step verdict codes broadcast by rank 0.
const GO: u8 = 0;
const YIELD: u8 = 1;
const STOP: u8 = 2;

/// Translate a validated [`JobSpec`] into a solver configuration.
/// Medium/high-order jobs get the paper's cutoff-solver parameters for
/// their deck (the same values [`crate::BenchCase`] uses).
pub fn rig_config(spec: &JobSpec) -> Result<RigConfig, String> {
    let order: Order = spec.order.parse()?;
    let deck = match spec.deck.as_str() {
        "multimode" => Deck::MultiModePeriodic,
        "singlemode" => Deck::SingleModeOpen,
        other => return Err(format!("unknown deck '{other}' (multimode|singlemode)")),
    };
    let mut cfg = RigConfig {
        deck,
        order,
        mesh_n: spec.mesh_n,
        steps: spec.steps,
        // The service reports final diagnostics itself; per-step
        // logging is the CLI driver's concern.
        diag_every: 0,
        ..RigConfig::default()
    };
    if order.needs_br_solver() {
        cfg.cutoff_solver = true;
        cfg.params.epsilon = 0.1;
        cfg.params.cutoff = match deck {
            Deck::MultiModePeriodic => 0.2,
            Deck::SingleModeOpen => 0.5,
        };
    }
    if let Some(dt) = spec.dt {
        cfg.params.dt = dt;
    }
    cfg.params.validate()?;
    Ok(cfg)
}

/// How one epoch ended, per rank (identical on every rank — all
/// branching follows the rank-0 broadcast).
#[derive(Debug, Clone, Copy, PartialEq)]
enum EpochEnd {
    Done { amplitude: f64, enstrophy: f64 },
    Yielded { at_step: usize },
    Stopped { at_step: usize },
}

/// One dispatch epoch: build the solver, restore the checkpoint when
/// resuming, and step to completion or to a broadcast verdict.
fn epoch(
    comm: &Communicator,
    cfg: &RigConfig,
    checkpoint_every: usize,
    ckpt: &Path,
    restore: bool,
    preempt: &AtomicBool,
    cancel: &AtomicBool,
) -> EpochEnd {
    let mut solver = Solver::new(cfg.build_mesh(comm), cfg.boundary_condition(), cfg.solver_config());
    if restore {
        let (step, time) = beatnik_io::checkpoint::load(solver.problem_mut(), ckpt)
            .expect("checkpoint restore failed");
        solver.restore_clock(step, time);
    }
    while solver.step_count() < cfg.steps {
        let verdict = if comm.rank() == 0 {
            use std::sync::atomic::Ordering;
            let code = if cancel.load(Ordering::Relaxed) {
                STOP
            } else if preempt.load(Ordering::Relaxed) {
                YIELD
            } else {
                GO
            };
            comm.broadcast(0, Some(vec![code]))[0]
        } else {
            comm.broadcast::<u8>(0, None)[0]
        };
        let at_step = solver.step_count();
        match verdict {
            YIELD => {
                beatnik_io::checkpoint::save(solver.problem(), at_step, solver.time(), ckpt)
                    .expect("preemption checkpoint write failed");
                return EpochEnd::Yielded { at_step };
            }
            STOP => return EpochEnd::Stopped { at_step },
            _ => {}
        }
        solver.step();
        let s = solver.step_count();
        if checkpoint_every > 0 && s.is_multiple_of(checkpoint_every) && s < cfg.steps {
            beatnik_io::checkpoint::save(solver.problem(), s, solver.time(), ckpt)
                .expect("checkpoint write failed");
        }
    }
    let d = Diagnostics::compute(solver.problem());
    EpochEnd::Done {
        amplitude: d.amplitude,
        enstrophy: d.enstrophy,
    }
}

/// Condense a profiled epoch's step-phase critical path into one line
/// for the job record.
fn critical_path_summary(timeline: &WorldTimeline) -> String {
    let cp = timeline.critical_path("step");
    let mut s = format!(
        "{} steps, {:.3} ms critical path",
        cp.steps.len(),
        cp.total_s * 1e3
    );
    let top: Vec<String> = cp
        .bound_by
        .iter()
        .take(3)
        .map(|(name, secs)| format!("{name} {:.3} ms", secs * 1e3))
        .collect();
    if !top.is_empty() {
        s.push_str(&format!("; bound by {}", top.join(", ")));
    }
    s
}

/// The production [`JobRunner`]: each scheduler dispatch builds a
/// fresh [`World`] of `ctx.ranks` thread-ranks on the job's requested
/// transport and runs the physics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RigRunner;

impl RigRunner {
    /// A runner (stateless; one instance serves every job).
    pub fn new() -> Self {
        RigRunner
    }
}

impl JobRunner for RigRunner {
    fn run(&self, ctx: &JobContext) -> Result<JobOutcome, String> {
        let spec = &ctx.spec;
        let cfg = rig_config(spec)?;
        let transport: TransportKind = spec.transport.parse()?;

        // Fault-plan jobs: the ULFM-style recovery driver, checkpoint
        // cadence included. Not preemptible (see module docs).
        if let Some(fspec) = &spec.faults {
            let plan = beatnik_comm::FaultPlan::parse(fspec, beatnik_comm::seed_from_env())?;
            let mut ft_cfg = cfg;
            ft_cfg.diag_every = 1; // final diagnostics come from the log
            let ckpt = ctx.ckpt_path.clone();
            let every = spec.checkpoint_every;
            let report = World::builder(ctx.ranks)
                .transport(transport)
                .recv_timeout(FT_RECV_TIMEOUT)
                .fault_plan(&plan)
                .run_ft(move |comm| run_rig_ft(comm, &ft_cfg, every, &ckpt));
            let log = report
                .results
                .into_iter()
                .flatten()
                .next()
                .ok_or_else(|| "no surviving rank produced a log".to_string())?;
            let last = log
                .steps
                .last()
                .ok_or_else(|| "fault-tolerant run produced no step records".to_string())?;
            return Ok(JobOutcome::Completed {
                steps: spec.steps,
                amplitude: last.diagnostics.amplitude,
                enstrophy: last.diagnostics.enstrophy,
                critical_path: None,
            });
        }

        let restore = ctx.resume && ctx.ckpt_path.exists();
        let every = spec.checkpoint_every;
        let ckpt = ctx.ckpt_path.clone();
        let preempt = Arc::clone(&ctx.preempt);
        let cancel = Arc::clone(&ctx.cancel);
        let run = move |comm: Communicator| {
            epoch(&comm, &cfg, every, &ckpt, restore, &preempt, &cancel)
        };

        let (ends, trace, timeline) = if spec.profile {
            let (ends, trace, timeline) = World::builder(ctx.ranks)
                .transport(transport)
                .run_profiled(run);
            (ends, trace, Some(timeline))
        } else {
            let (ends, trace) = World::builder(ctx.ranks).transport(transport).run_traced(run);
            (ends, trace, None)
        };

        // Per-job communication volume, labelled into the service
        // registry so `GET /metrics` exposes it next to the job state.
        ctx.registry
            .counter(
                "beatnik_serve_job_comm_bytes_total",
                "payload bytes moved by the job's world",
                &[("job", &ctx.id.to_string())],
            )
            .add(trace.total_bytes());

        let end = *ends.first().ok_or_else(|| "world produced no result".to_string())?;
        Ok(match end {
            EpochEnd::Done {
                amplitude,
                enstrophy,
            } => JobOutcome::Completed {
                steps: spec.steps,
                amplitude,
                enstrophy,
                critical_path: timeline.as_ref().map(critical_path_summary),
            },
            EpochEnd::Yielded { at_step } => JobOutcome::Preempted { at_step },
            EpochEnd::Stopped { at_step } => JobOutcome::Canceled { at_step },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_serve::scheduler::JobContext;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("beatnik-serve-driver-{}-{name}", std::process::id()))
    }

    #[test]
    fn spec_maps_to_solver_config() {
        let spec = JobSpec {
            order: "high".into(),
            deck: "singlemode".into(),
            dt: Some(5e-4),
            ..JobSpec::default()
        };
        let cfg = rig_config(&spec).unwrap();
        assert_eq!(cfg.order, Order::High);
        assert_eq!(cfg.deck, Deck::SingleModeOpen);
        assert!(cfg.cutoff_solver);
        assert_eq!(cfg.params.cutoff, 0.5);
        assert_eq!(cfg.params.dt, 5e-4);
        assert!(rig_config(&JobSpec { order: "ultra".into(), ..JobSpec::default() }).is_err());
        assert!(rig_config(&JobSpec { deck: "cube".into(), ..JobSpec::default() }).is_err());
        assert!(rig_config(&JobSpec { dt: Some(-1.0), ..JobSpec::default() }).is_err());
    }

    #[test]
    fn runner_completes_a_small_job() {
        let ctx = JobContext::standalone(
            JobSpec {
                mesh_n: 12,
                steps: 2,
                ranks: 2,
                ..JobSpec::default()
            },
            2,
            tmp("complete.ckpt.json"),
        );
        match RigRunner::new().run(&ctx).unwrap() {
            JobOutcome::Completed {
                steps, amplitude, ..
            } => {
                assert_eq!(steps, 2);
                assert!(amplitude.is_finite());
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn runner_honors_cancel_before_first_step() {
        let ctx = JobContext::standalone(
            JobSpec {
                mesh_n: 12,
                steps: 50,
                ranks: 2,
                ..JobSpec::default()
            },
            2,
            tmp("cancel.ckpt.json"),
        );
        ctx.cancel.store(true, std::sync::atomic::Ordering::Relaxed);
        match RigRunner::new().run(&ctx).unwrap() {
            JobOutcome::Canceled { at_step } => assert_eq!(at_step, 0),
            other => panic!("expected cancel, got {other:?}"),
        }
    }

    #[test]
    fn profiled_job_reports_a_critical_path() {
        let ctx = JobContext::standalone(
            JobSpec {
                mesh_n: 12,
                steps: 2,
                profile: true,
                ..JobSpec::default()
            },
            1,
            tmp("profile.ckpt.json"),
        );
        match RigRunner::new().run(&ctx).unwrap() {
            JobOutcome::Completed { critical_path, .. } => {
                let cp = critical_path.expect("profiled job records a critical path");
                assert!(cp.contains("critical path"), "{cp}");
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }
}
