//! Lock-free metrics registry: counters, gauges, and fixed-bucket
//! histograms with atomic cells and a zero-alloc hot path.
//!
//! `RankTrace` (comm byte accounting), the `BufferPool`, the mailbox
//! posted-receive registry, and the fault ledger all publish into one
//! [`MetricsRegistry`] per world. Registration (naming a metric and its
//! label set) takes a lock and allocates; it happens once at world
//! setup. The handles it returns — [`Counter`], [`Gauge`],
//! [`Histogram`] — are `Arc`-wrapped atomics, so the hot path is a
//! relaxed `fetch_add`: no locks, no allocation, no branching on
//! enablement.
//!
//! Histograms use the canonical power-of-two byte buckets of
//! [`crate::sizebins`] — the same table the per-op trace histograms and
//! the analytic network model use — so there is exactly one
//! bucket-edge definition in the workspace.
//!
//! [`MetricsRegistry::snapshot`] copies every cell into a plain-data
//! [`MetricsSnapshot`], which renders to OpenMetrics text exposition
//! via [`openmetrics_text`] or to JSON via `beatnik-io`.

use crate::sizebins;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A monotonically increasing counter. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (all-zero standalone cell).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (benchmark harnesses only — OpenMetrics counters
    /// are conceptually monotonic).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a value that can move both ways (queue depths, in-flight
/// counts, high-water marks). Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n`, returning the new value.
    #[inline]
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Subtract `n` (saturating at the atomic level is the caller's
    /// responsibility; paired add/sub never underflow in practice).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if larger (high-water marks).
    #[inline]
    pub fn max_with(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Atomic cells backing one histogram: per-bucket counts over the
/// [`sizebins`] table plus a total count and sum.
#[derive(Debug)]
pub struct HistogramCells {
    buckets: [AtomicU64; sizebins::NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> Self {
        HistogramCells {
            buckets: [(); sizebins::NUM_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram over the canonical [`sizebins`] byte
/// buckets. Cloning shares the cells.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Self {
        Histogram::default()
    }

    /// Record one observation of `bytes`.
    #[inline]
    pub fn observe(&self, bytes: u64) {
        let c = &self.0;
        c.buckets[sizebins::bucket_of(bytes)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Per-bucket counts (non-cumulative, matching `RankTrace`'s
    /// `ByteHistogram` layout).
    pub fn bucket_counts(&self) -> [u64; sizebins::NUM_BUCKETS] {
        let mut out = [0u64; sizebins::NUM_BUCKETS];
        for (o, b) in out.iter_mut().zip(self.0.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Reset all cells to zero.
    pub fn reset(&self) {
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.0.count.store(0, Ordering::Relaxed);
        self.0.sum.store(0, Ordering::Relaxed);
    }
}

/// The kind of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter (name should end in `_total`).
    Counter,
    /// Bidirectional gauge.
    Gauge,
    /// Fixed-bucket byte histogram.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct SampleEntry {
    labels: Vec<(String, String)>,
    cell: Cell,
}

#[derive(Debug)]
struct FamilyEntry {
    name: String,
    help: String,
    kind: MetricKind,
    samples: Vec<SampleEntry>,
}

/// The metrics registry: named families of labelled samples.
///
/// Registration is idempotent — asking for the same (name, labels)
/// pair twice returns a handle to the same cell — and panics if a name
/// is re-registered under a different kind, which would corrupt the
/// exposition.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<FamilyEntry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Vec<FamilyEntry>> {
        // A panic mid-registration cannot leave a family half-written in
        // a way later readers care about; recover from poison.
        self.families
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Cell,
    ) -> Cell {
        let mut fams = self.lock();
        let fam = match fams.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric {name:?} re-registered as {kind:?}, was {:?}",
                    f.kind
                );
                f
            }
            None => {
                fams.push(FamilyEntry {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    samples: Vec::new(),
                });
                fams.last_mut().unwrap()
            }
        };
        if let Some(s) = fam
            .samples
            .iter()
            .find(|s| s.labels.len() == labels.len()
                && s.labels.iter().zip(labels).all(|((k, v), (lk, lv))| k == lk && v == lv))
        {
            return s.cell.clone();
        }
        let cell = make();
        fam.samples.push(SampleEntry {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            cell: cell.clone(),
        });
        cell
    }

    /// Register (or look up) a counter sample.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, MetricKind::Counter, labels, || {
            Cell::Counter(Counter::detached())
        }) {
            Cell::Counter(c) => c,
            _ => unreachable!("kind checked during registration"),
        }
    }

    /// Register (or look up) a gauge sample.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, MetricKind::Gauge, labels, || {
            Cell::Gauge(Gauge::detached())
        }) {
            Cell::Gauge(g) => g,
            _ => unreachable!("kind checked during registration"),
        }
    }

    /// Register (or look up) a histogram sample over the canonical
    /// [`sizebins`] buckets.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, MetricKind::Histogram, labels, || {
            Cell::Histogram(Histogram::detached())
        }) {
            Cell::Histogram(h) => h,
            _ => unreachable!("kind checked during registration"),
        }
    }

    /// Copy every registered cell into a plain-data snapshot. Safe to
    /// call while other threads keep writing (relaxed reads; values are
    /// per-cell consistent, not cross-cell consistent).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let fams = self.lock();
        let families = fams
            .iter()
            .map(|f| MetricFamily {
                name: f.name.clone(),
                help: f.help.clone(),
                kind: f.kind,
                samples: f
                    .samples
                    .iter()
                    .map(|s| MetricSample {
                        labels: s.labels.clone(),
                        value: match &s.cell {
                            Cell::Counter(c) => MetricValue::Counter(c.get()),
                            Cell::Gauge(g) => MetricValue::Gauge(g.get()),
                            Cell::Histogram(h) => MetricValue::Histogram {
                                buckets: Box::new(h.bucket_counts()),
                                count: h.count(),
                                sum: h.sum(),
                            },
                        },
                    })
                    .collect(),
            })
            .collect();
        MetricsSnapshot { families }
    }
}

/// Plain-data copy of a registry (plus any synthesized families), ready
/// for rendering.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// The metric families, in registration order.
    pub families: Vec<MetricFamily>,
}

/// One named family of samples sharing a kind and help string.
#[derive(Debug, Clone)]
pub struct MetricFamily {
    /// Full metric name (counters end in `_total`).
    pub name: String,
    /// Help text for the exposition.
    pub help: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// The labelled samples.
    pub samples: Vec<MetricSample>,
}

/// One labelled sample.
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Label key/value pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: MetricValue,
}

/// A sampled metric value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram cells: non-cumulative per-bucket counts over
    /// [`sizebins`], total count, and sum of observations.
    Histogram {
        /// Per-bucket observation counts (bucket `i` per `sizebins`).
        /// Boxed so scalar samples don't pay the array's footprint.
        buckets: Box<[u64; sizebins::NUM_BUCKETS]>,
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
    },
}

impl MetricsSnapshot {
    /// Find a sample's scalar value by family name and exact label
    /// subset match (every pair in `labels` must be present).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let fam = self.families.iter().find(|f| f.name == name)?;
        let s = fam.samples.iter().find(|s| {
            labels
                .iter()
                .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        })?;
        match s.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(v),
            MetricValue::Histogram { count, .. } => Some(count),
        }
    }

    /// Append a synthesized family (used for values that live outside
    /// the registry's atomic cells, e.g. the per-phase comm matrix).
    pub fn push_family(&mut self, family: MetricFamily) {
        self.families.push(family);
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    out.push('}');
}

/// Render a snapshot as OpenMetrics / Prometheus text exposition
/// (`# TYPE` / `# HELP` headers, cumulative `le` histogram buckets,
/// trailing `# EOF`).
pub fn openmetrics_text(snap: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for fam in &snap.families {
        // OpenMetrics metric-family names drop the `_total` suffix;
        // the counter sample lines keep it.
        let base = fam.name.strip_suffix("_total").unwrap_or(&fam.name);
        let _ = writeln!(out, "# TYPE {base} {}", fam.kind.as_str());
        if !fam.help.is_empty() {
            let _ = writeln!(out, "# HELP {base} {}", fam.help);
        }
        for s in &fam.samples {
            match &s.value {
                MetricValue::Counter(v) => {
                    out.push_str(base);
                    out.push_str("_total");
                    render_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                MetricValue::Gauge(v) => {
                    out.push_str(base);
                    render_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                MetricValue::Histogram { buckets, count, sum } => {
                    let mut cum = 0u64;
                    for (i, &c) in buckets.iter().enumerate() {
                        cum += c;
                        let le = if i == sizebins::NUM_BUCKETS - 1 {
                            "+Inf".to_string()
                        } else {
                            sizebins::bucket_hi(i).to_string()
                        };
                        out.push_str(base);
                        out.push_str("_bucket");
                        render_labels(&mut out, &s.labels, Some(("le", &le)));
                        let _ = writeln!(out, " {cum}");
                    }
                    out.push_str(base);
                    out.push_str("_count");
                    render_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {count}");
                    out.push_str(base);
                    out.push_str("_sum");
                    render_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {sum}");
                }
            }
        }
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("beatnik_test_total", "a counter", &[("rank", "0")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("beatnik_depth", "a gauge", &[("rank", "0")]);
        g.set(7);
        g.sub(2);
        assert_eq!(g.add(1), 6);
        g.max_with(3);
        assert_eq!(g.get(), 6);
        g.max_with(11);
        assert_eq!(g.get(), 11);
        let h = reg.histogram("beatnik_sizes_bytes", "sizes", &[("rank", "0")]);
        h.observe(1);
        h.observe(100);
        h.observe(100);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 201);
        assert_eq!(h.bucket_counts()[sizebins::bucket_of(100)], 2);

        let snap = reg.snapshot();
        assert_eq!(snap.value("beatnik_test_total", &[("rank", "0")]), Some(5));
        assert_eq!(snap.value("beatnik_depth", &[("rank", "0")]), Some(11));
        assert_eq!(snap.value("beatnik_sizes_bytes", &[("rank", "0")]), Some(3));
        assert_eq!(snap.value("beatnik_missing", &[]), None);
    }

    #[test]
    fn registration_is_idempotent_and_shares_cells() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("beatnik_x_total", "x", &[("rank", "1")]);
        let b = reg.counter("beatnik_x_total", "x", &[("rank", "1")]);
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        // A different label set is a distinct cell in the same family.
        let c = reg.counter("beatnik_x_total", "x", &[("rank", "2")]);
        c.inc();
        let snap = reg.snapshot();
        let fam = snap.families.iter().find(|f| f.name == "beatnik_x_total").unwrap();
        assert_eq!(fam.samples.len(), 2);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_conflict_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("beatnik_y_total", "y", &[]);
        let _ = reg.gauge("beatnik_y_total", "y", &[]);
    }

    #[test]
    fn openmetrics_rendering_is_valid_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("beatnik_msgs_total", "messages", &[("rank", "0"), ("op", "send")])
            .add(2);
        reg.gauge("beatnik_inflight", "in flight", &[("rank", "0")]).set(3);
        let h = reg.histogram("beatnik_msg_size_bytes", "sizes", &[("rank", "0")]);
        h.observe(64);
        h.observe(65536);
        let text = openmetrics_text(&reg.snapshot());
        assert!(text.contains("# TYPE beatnik_msgs counter"), "{text}");
        assert!(
            text.contains("beatnik_msgs_total{rank=\"0\",op=\"send\"} 2"),
            "{text}"
        );
        assert!(text.contains("# TYPE beatnik_inflight gauge"), "{text}");
        assert!(text.contains("beatnik_inflight{rank=\"0\"} 3"), "{text}");
        assert!(text.contains("# TYPE beatnik_msg_size_bytes histogram"), "{text}");
        // Cumulative buckets: the +Inf bucket equals the count.
        assert!(
            text.contains("beatnik_msg_size_bytes_bucket{rank=\"0\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("beatnik_msg_size_bytes_count{rank=\"0\"} 2"), "{text}");
        assert!(
            text.contains(&format!("beatnik_msg_size_bytes_sum{{rank=\"0\"}} {}", 64 + 65536)),
            "{text}"
        );
        assert!(text.ends_with("# EOF\n"), "{text}");
        // Histogram bucket edges are the canonical sizebins edges.
        assert!(
            text.contains("le=\"64\"") && text.contains("le=\"65536\""),
            "{text}"
        );
    }

    #[test]
    fn hot_path_handles_work_across_threads() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("beatnik_par_total", "", &[]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
