//! Checkpoint/restart: serialize the full simulation state and resume
//! bitwise-identically — the capability long-running benchmark campaigns
//! (like the paper's 1024-GPU sweeps) rely on.
//!
//! Format: JSON with every node's global index, position, and vorticity
//! (rank 0 gathers/writes and reads/broadcasts; ranks fill their owned
//! blocks). JSON keeps checkpoints portable and diffable; the
//! shortest-round-trip float formatting guarantees bit-exact floats.

use crate::gather_surface;
use beatnik_core::ProblemManager;
use beatnik_json::impl_json_struct;
use std::path::Path;

/// A serialized simulation state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Completed step count at save time.
    pub step: usize,
    /// Simulated time at save time.
    pub time: f64,
    /// Global mesh shape `[rows, cols]`.
    pub global: [usize; 2],
    /// Row-major node states: `(z, w)` per global node.
    pub nodes: Vec<([f64; 3], [f64; 2])>,
}

impl_json_struct!(Checkpoint { step, time, global, nodes });

/// Gather and write a checkpoint (rank 0 writes). Collective.
///
/// The write is atomic: the state goes to `<path>.tmp` and is renamed
/// into place only after a successful flush, so a rank dying mid-write
/// (the fault-injection scenario recovery restarts from) can never leave
/// a truncated checkpoint behind — the previous complete one survives.
pub fn save(
    pm: &ProblemManager,
    step: usize,
    time: f64,
    path: impl AsRef<Path>,
) -> std::io::Result<()> {
    if let Some((nr, nc, nodes)) = gather_surface(pm) {
        let ck = Checkpoint {
            step,
            time,
            global: [nr, nc],
            nodes,
        };
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let file = std::fs::File::create(&tmp)?;
            let mut w = std::io::BufWriter::new(file);
            beatnik_json::to_writer(&mut w, &ck)?;
            use std::io::Write as _;
            w.flush()?;
        }
        std::fs::rename(&tmp, path)?;
    }
    Ok(())
}

/// Read a checkpoint (rank 0 reads, broadcasts) and load it into `pm`'s
/// owned block. Returns `(step, time)`. Collective.
///
/// # Panics
/// Panics if the checkpoint's mesh shape differs from `pm`'s.
pub fn load(pm: &mut ProblemManager, path: impl AsRef<Path>) -> std::io::Result<(usize, f64)> {
    let comm = pm.mesh().comm();
    let ck: Checkpoint = if comm.rank() == 0 {
        let text = std::fs::read_to_string(path)?;
        let ck: Checkpoint = beatnik_json::from_str(&text).map_err(std::io::Error::other)?;
        comm.broadcast(0, Some(vec![ck.clone()]));
        ck
    } else {
        comm.broadcast::<Checkpoint>(0, None)
            .into_iter()
            .next()
            .expect("checkpoint broadcast")
    };
    assert_eq!(
        ck.global,
        pm.mesh().global(),
        "checkpoint mesh shape mismatch"
    );
    let [_, nc] = ck.global;
    let coords: Vec<_> = pm.mesh().owned_indices().collect();
    for (lr, lc, gr, gc) in coords {
        let (z, w) = ck.nodes[gr * nc + gc];
        pm.z_mut().set_node(lr, lc, &z);
        pm.w_mut().set_node(lr, lc, &w);
    }
    Ok((ck.step, ck.time))
}

#[cfg(test)]
mod tests {
    use super::*;
    use beatnik_comm::World;
    use beatnik_core::InitialCondition;
    use beatnik_mesh::{BoundaryCondition, SurfaceMesh};

    fn make_pm(comm: &beatnik_comm::Communicator) -> ProblemManager {
        let mesh = SurfaceMesh::new(comm, [8, 8], [true, true], 2, [0.0, 0.0], [1.0, 1.0]);
        ProblemManager::new(mesh, BoundaryCondition::Periodic { periods: [1.0, 1.0] })
    }

    #[test]
    fn save_load_roundtrip_across_rank_counts() {
        let dir = std::env::temp_dir().join("beatnik_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");

        // Save from a 4-rank world…
        let p2 = path.clone();
        World::builder(4).run(move |comm| {
            let mut pm = make_pm(&comm);
            InitialCondition::MultiMode {
                amplitude: 0.07,
                modes: 3,
                seed: 99,
            }
            .apply(&mut pm);
            save(&pm, 17, 0.34, &p2).unwrap();
            comm.barrier();
        });

        // …restore into a 2-rank world and verify every node.
        let p3 = path.clone();
        World::builder(2).run(move |comm| {
            let mut pm = make_pm(&comm);
            let (step, time) = load(&mut pm, &p3).unwrap();
            assert_eq!(step, 17);
            assert_eq!(time, 0.34);
            let mut reference = make_pm(&comm);
            InitialCondition::MultiMode {
                amplitude: 0.07,
                modes: 3,
                seed: 99,
            }
            .apply(&mut reference);
            for (lr, lc, _, _) in pm.mesh().owned_indices() {
                assert_eq!(pm.z().node(lr, lc), reference.z().node(lr, lc));
                assert_eq!(pm.w().node(lr, lc), reference.w().node(lr, lc));
            }
        });
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_mesh_shape_rejected() {
        let dir = std::env::temp_dir().join("beatnik_ckpt_mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let p2 = path.clone();
        World::builder(1).run(move |comm| {
            let pm = make_pm(&comm);
            save(&pm, 0, 0.0, &p2).unwrap();
        });
        World::builder(1).run(move |comm| {
            let mesh =
                SurfaceMesh::new(&comm, [12, 12], [true, true], 2, [0.0, 0.0], [1.0, 1.0]);
            let mut pm = ProblemManager::new(
                mesh,
                BoundaryCondition::Periodic { periods: [1.0, 1.0] },
            );
            let _ = load(&mut pm, &path);
        });
    }
}
