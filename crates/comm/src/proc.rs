//! One process per rank: spawn, rendezvous, join.
//!
//! [`spmd`] turns the current binary into an `mpirun`-style launcher.
//! The calling process hosts **world rank 0**; every other rank is a
//! re-exec of `std::env::current_exe()` with a role, rank, and
//! rendezvous information carried in `BEATNIK_PROC_*` environment
//! variables (plus the parent's resolved [`CommConfig`], re-exported as
//! the ordinary `BEATNIK_*` variables so every process agrees on eager
//! limit, timeouts, and ring sizes without re-reading a possibly-racing
//! environment).
//!
//! The child re-enters the same code path the parent ran — a test
//! re-runs itself via libtest's `--exact` filter, `rocketrig` re-runs
//! its own argv — and [`spmd`] detects the child role, joins the world,
//! runs the rank closure, and **exits the process** (it never returns
//! in a child). Exit codes form the join protocol:
//!
//! * `0` — clean completion (the rank also said `Bye` on the wire),
//! * [`EXIT_KILLED`] (86) — the rank died by fault injection
//!   ([`crate::fault::RankKilled`]); the parent records it and carries on,
//! * anything else — a real failure; the parent panics after reaping.
//!
//! Communicator ids that normally come from shared-memory interning
//! (`shrink` children) switch to hash-derived ids via
//! [`Registry::set_deterministic_ids`], since survivor processes cannot
//! share an interning table.

use crate::communicator::Communicator;
use crate::config::CommConfig;
use crate::fault::RankKilled;
use crate::pool::BufferPool;
use crate::registry::{Registry, WORLD_COMM_ID};
use crate::trace::RankTrace;
use crate::transport::{shmem::ShmemTransport, tcp::TcpTransport, CtrlMsg, Transport, TransportKind};
use beatnik_telemetry::metrics::MetricsRegistry;
use beatnik_telemetry::SpanRecorder;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Role marker: set (to the child's rank) in every spawned process.
pub const RANK_ENV: &str = "BEATNIK_PROC_RANK";

/// World size, set in every spawned process.
pub const SIZE_ENV: &str = "BEATNIK_PROC_SIZE";

/// Shmem rendezvous: the ring directory created by the parent.
pub const SHM_DIR_ENV: &str = "BEATNIK_PROC_SHM_DIR";

/// TCP rendezvous: the parent's listen address.
pub const TCP_PARENT_ENV: &str = "BEATNIK_PROC_TCP_PARENT";

/// Exit code of a child whose rank died by fault injection: part of the
/// experiment, not a launcher failure.
pub const EXIT_KILLED: i32 = 86;

/// How long the parent waits for children to exit after its own rank
/// completes before killing them.
const REAP_TIMEOUT: Duration = Duration::from_secs(60);

/// Whether this process is a spawned child rank (and which rank).
pub fn child_rank() -> Option<usize> {
    std::env::var(RANK_ENV).ok()?.parse().ok()
}

/// Run `f` as an SPMD program over `num_ranks` processes, one per rank.
///
/// In the launching process this spawns `num_ranks - 1` children (each
/// re-executes the current binary with `child_args`), hosts rank 0
/// itself, reaps the children, and returns `(rank 0's result, killed
/// world ranks)`. In a child process (detected via [`child_rank`]) it
/// joins the world, runs `f`, and exits — it never returns.
///
/// `child_args` must make the re-executed binary reach this same
/// [`spmd`] call: for a libtest binary, `["<exact test path>",
/// "--exact", "--nocapture", "--test-threads=1"]`; for an application,
/// usually its own argv tail.
pub fn spmd<R, F>(
    num_ranks: usize,
    kind: TransportKind,
    child_args: &[&str],
    f: F,
) -> (R, Vec<usize>)
where
    F: FnOnce(Communicator) -> R,
{
    assert!(num_ranks > 0, "world needs at least one rank");
    let config = {
        let mut c = CommConfig::from_env();
        c.transport = kind;
        c
    };
    match child_rank() {
        Some(rank) => child_main(rank, &config, f),
        None => parent_main(num_ranks, &config, child_args, f),
    }
}

/// Build the per-process world plumbing shared by parent and children.
fn join_world<R, F>(
    rank: usize,
    num_ranks: usize,
    config: &CommConfig,
    transport: Arc<dyn Transport>,
    f: F,
) -> std::thread::Result<R>
where
    F: FnOnce(Communicator) -> R,
{
    let registry = Arc::new(Registry::new());
    registry.set_deterministic_ids();
    registry.install_transport(Arc::clone(&transport));
    transport.attach(&registry);

    let metrics = Arc::new(MetricsRegistry::new());
    let trace = Arc::new(RankTrace::with_registry(&metrics, rank));
    let comm = Communicator::new(
        Arc::clone(&registry),
        WORLD_COMM_ID,
        rank,
        num_ranks,
        Arc::new((0..num_ranks).collect()),
        trace,
        Arc::new(SpanRecorder::disabled()),
        Arc::new(BufferPool::new()),
        config.recv_timeout,
        config.eager_limit,
    );
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm)));
    match &out {
        // A clean goodbye first, so peers treat the coming disconnect
        // as shutdown rather than failure.
        Ok(_) => transport.publish_ctrl(CtrlMsg::Bye(rank)),
        Err(p) if p.downcast_ref::<RankKilled>().is_some() => {
            // The ledger broadcast already happened in mark_failed.
        }
        Err(_) => registry.signal_abort(),
    }
    transport.shutdown();
    out
}

fn build_child_transport(rank: usize, num_ranks: usize, config: &CommConfig) -> Arc<dyn Transport> {
    match config.transport {
        TransportKind::Thread => {
            panic!("the thread transport cannot span processes; use shmem or tcp")
        }
        TransportKind::Shmem => {
            let dir = std::env::var(SHM_DIR_ENV)
                .unwrap_or_else(|_| panic!("child missing {SHM_DIR_ENV}"));
            Arc::new(
                ShmemTransport::for_process(
                    std::path::Path::new(&dir),
                    rank,
                    num_ranks,
                    config.shm_ring_bytes,
                )
                .unwrap_or_else(|e| panic!("rank {rank}: joining shm world: {e}")),
            )
        }
        TransportKind::Tcp => {
            let addr = std::env::var(TCP_PARENT_ENV)
                .unwrap_or_else(|_| panic!("child missing {TCP_PARENT_ENV}"));
            Arc::new(
                TcpTransport::child(&addr, rank, num_ranks)
                    .unwrap_or_else(|e| panic!("rank {rank}: joining tcp world: {e}")),
            )
        }
    }
}

fn child_main<R, F>(rank: usize, config: &CommConfig, f: F) -> !
where
    F: FnOnce(Communicator) -> R,
{
    let num_ranks: usize = std::env::var(SIZE_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("child missing {SIZE_ENV}"));
    let transport = build_child_transport(rank, num_ranks, config);
    match join_world(rank, num_ranks, config, transport, f) {
        Ok(_) => std::process::exit(0),
        Err(p) if p.downcast_ref::<RankKilled>().is_some() => std::process::exit(EXIT_KILLED),
        Err(_) => std::process::exit(101),
    }
}

fn parent_main<R, F>(
    num_ranks: usize,
    config: &CommConfig,
    child_args: &[&str],
    f: F,
) -> (R, Vec<usize>)
where
    F: FnOnce(Communicator) -> R,
{
    let exe = std::env::current_exe().expect("resolving current executable");

    // Rendezvous state the children need, plus our own transport.
    let (transport, rendezvous): (Arc<dyn Transport>, (&str, String)) = match config.transport {
        TransportKind::Thread => {
            panic!("the thread transport cannot span processes; use shmem or tcp")
        }
        TransportKind::Shmem => {
            let dir = ShmemTransport::create_world_dir(num_ranks, config.shm_ring_bytes)
                .expect("creating the shm world directory");
            let t = ShmemTransport::for_process(&dir, 0, num_ranks, config.shm_ring_bytes)
                .expect("joining the shm world as rank 0");
            let dir_str = dir.to_string_lossy().into_owned();
            (Arc::new(t), (SHM_DIR_ENV, dir_str))
        }
        TransportKind::Tcp => {
            let listener = TcpListener::bind("127.0.0.1:0").expect("binding the parent listener");
            let addr = listener.local_addr().unwrap().to_string();
            // Children connect while we block in TcpTransport::parent
            // below, so spawn first, accept after.
            let children = spawn_children(
                &exe,
                child_args,
                num_ranks,
                config,
                (TCP_PARENT_ENV, addr.clone()),
            );
            let t = TcpTransport::parent(listener, num_ranks).expect("tcp rendezvous as rank 0");
            let out = run_parent_rank(num_ranks, config, Arc::new(t), children, f);
            return out;
        }
    };

    let children = spawn_children(&exe, child_args, num_ranks, config, rendezvous);
    run_parent_rank(num_ranks, config, transport, children, f)
}

fn spawn_children(
    exe: &std::path::Path,
    child_args: &[&str],
    num_ranks: usize,
    config: &CommConfig,
    rendezvous: (&str, String),
) -> Vec<(usize, std::process::Child)> {
    (1..num_ranks)
        .map(|rank| {
            let child = std::process::Command::new(exe)
                .args(child_args)
                .env(RANK_ENV, rank.to_string())
                .env(SIZE_ENV, num_ranks.to_string())
                .env(rendezvous.0, &rendezvous.1)
                // Ship the *resolved* config so every process agrees.
                .env(crate::config::TRANSPORT_ENV, config.transport.name())
                .env(
                    crate::transport::EAGER_LIMIT_ENV,
                    config.eager_limit.to_string(),
                )
                .env(crate::fault::FAULT_SEED_ENV, config.fault_seed.to_string())
                .env(
                    crate::config::RECV_TIMEOUT_ENV,
                    config.recv_timeout.as_millis().to_string(),
                )
                .env(
                    crate::config::SHM_RING_BYTES_ENV,
                    config.shm_ring_bytes.to_string(),
                )
                .spawn()
                .unwrap_or_else(|e| panic!("spawning child rank {rank}: {e}"));
            (rank, child)
        })
        .collect()
}

fn run_parent_rank<R, F>(
    num_ranks: usize,
    config: &CommConfig,
    transport: Arc<dyn Transport>,
    children: Vec<(usize, std::process::Child)>,
    f: F,
) -> (R, Vec<usize>)
where
    F: FnOnce(Communicator) -> R,
{
    let out = join_world(0, num_ranks, config, transport, f);
    let killed = reap(children, out.is_err());
    match out {
        Ok(r) => (r, killed),
        Err(p) => std::panic::resume_unwind(p),
    }
}

/// Wait for every child, killing stragglers past [`REAP_TIMEOUT`] (or
/// immediately when the parent rank itself failed). Returns the world
/// ranks that exited with [`EXIT_KILLED`]; panics on any other nonzero
/// exit.
fn reap(children: Vec<(usize, std::process::Child)>, parent_failed: bool) -> Vec<usize> {
    let deadline = Instant::now() + if parent_failed { Duration::ZERO } else { REAP_TIMEOUT };
    let mut killed = Vec::new();
    let mut bad: Vec<String> = Vec::new();
    for (rank, mut child) in children {
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) if Instant::now() > deadline => {
                    let _ = child.kill();
                    break child.wait().expect("reaping a killed child");
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                Err(e) => panic!("waiting for child rank {rank}: {e}"),
            }
        };
        match status.code() {
            Some(0) => {}
            Some(EXIT_KILLED) => killed.push(rank),
            other => bad.push(format!("rank {rank} exited with {other:?}")),
        }
    }
    if !bad.is_empty() && !parent_failed {
        panic!("child ranks failed: {}", bad.join(", "));
    }
    killed.sort_unstable();
    killed
}
