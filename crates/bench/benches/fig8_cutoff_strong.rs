//! Figure 8: high-order cutoff solver strong scaling, 4 → 256 GPUs
//! (single-mode deck, 512² points, cutoff 0.5).
//!
//! Paper result: 3.3× speedup from 4 to 64 GPUs (21% efficiency);
//! "while performance turns over beyond this point, the performance
//! reduction from additional GPUs is modest because of the localization
//! of communication provided by the cutoff solver."
//!
//! Load-imbalance factors are *measured* from a real scaled single-mode
//! run (the same reference simulation as Figures 6/7), binned into each
//! candidate rank count.

use beatnik_bench::{fig8_series, singlemode_reference};
use beatnik_model::{efficiency, format_table, Machine};

fn main() {
    println!("=== Figure 8: Cutoff Solver Strong Scaling (Lassen model + measured imbalance) ===\n");
    println!("running the scaled single-mode reference simulation...\n");
    let reference = singlemode_reference(48, 40, 200);
    println!("measured load-imbalance factors (max/mean points per region):");
    for &(p, early, late) in &reference.lambda_by_p {
        println!("  {p:>5} regions: early {early:.2}, late {late:.2}");
    }

    let series = fig8_series(&Machine::lassen(), &reference);
    println!();
    print!("{}", format_table(std::slice::from_ref(&series)));

    let t4 = series.time_at(4).unwrap();
    let t64 = series.time_at(64).unwrap();
    let t256 = series.time_at(256).unwrap();
    println!("\nspeedup 4 -> 64 GPUs: {:.2}x (paper: 3.3x)", t4 / t64);
    println!(
        "parallel efficiency 4 -> 64: {:.1}% (paper: 21%)",
        100.0 * efficiency(4, t4, 64, t64)
    );
    println!(
        "turnover: {} GPUs; 256-GPU runtime is {:.2}x the 64-GPU runtime (modest, per the paper)",
        series.best_ranks().unwrap(),
        t256 / t64
    );
}
