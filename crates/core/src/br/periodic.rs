//! Periodic-image exact Birkhoff–Rott solver — the paper's §6
//! "periodic boundary conditions for … high-order solves" future work.
//!
//! The plain exact solver treats the surface as an isolated patch; on a
//! periodic problem that truncates the far field at the domain edge and
//! breaks translation symmetry. This solver sums the desingularized
//! kernel over a `(2m+1)²` lattice of x/y image copies of every source,
//! using the same ring-pass communication as [`super::ExactBrSolver`]
//! (each circulated block is evaluated against all images locally — the
//! communication pattern is unchanged, the compute grows by the image
//! count, exactly how production periodic summation behaves short of an
//! Ewald decomposition).

use super::kernel::br_pair_velocity;
use super::{BrPoint, BrSolver};
use beatnik_comm::Communicator;
use crate::par::prelude::*;

/// Ring-pass exact solver with x/y periodic images.
pub struct PeriodicExactBrSolver {
    /// Physical periods `[Lx, Ly]`.
    pub periods: [f64; 2],
    /// Image shells per direction (`m = 1` sums the 3×3 image lattice).
    pub images: usize,
}

impl PeriodicExactBrSolver {
    /// Create with periods and one image shell (the standard choice: the
    /// kernel decays as 1/r², so shell `m` contributes O(1/m²) and the
    /// first shell captures the dominant wrap-around interactions).
    pub fn new(periods: [f64; 2]) -> Self {
        assert!(periods[0] > 0.0 && periods[1] > 0.0, "periods must be positive");
        PeriodicExactBrSolver { periods, images: 1 }
    }

    /// Override the image shell count.
    pub fn with_images(mut self, images: usize) -> Self {
        self.images = images;
        self
    }

    fn shifts(&self) -> Vec<[f64; 3]> {
        let m = self.images as i64;
        let mut out = Vec::with_capacity(((2 * m + 1) * (2 * m + 1)) as usize);
        for iy in -m..=m {
            for ix in -m..=m {
                out.push([
                    ix as f64 * self.periods[0],
                    iy as f64 * self.periods[1],
                    0.0,
                ]);
            }
        }
        out
    }
}

impl BrSolver for PeriodicExactBrSolver {
    fn velocities(
        &self,
        comm: &Communicator,
        points: &[BrPoint],
        epsilon: f64,
    ) -> Vec<[f64; 3]> {
        let eps2 = epsilon * epsilon;
        let p = comm.size();
        let me = comm.rank();
        let shifts = self.shifts();
        let targets: Vec<[f64; 3]> = points.iter().map(|b| b.pos).collect();
        let mut vel = vec![[0.0f64; 3]; points.len()];
        let mut circ: Vec<([f64; 3], [f64; 3])> =
            points.iter().map(|b| (b.pos, b.strength)).collect();

        const TAG: u64 = 0x5052_4e47; // "PRNG"... ring tag for the periodic pass
        for step in 0..p {
            vel.par_iter_mut().zip(targets.par_iter()).for_each(|(v, &t)| {
                let mut acc = [0.0f64; 3];
                for &(pos, strength) in &circ {
                    for s in &shifts {
                        let img = [pos[0] + s[0], pos[1] + s[1], pos[2] + s[2]];
                        let u = br_pair_velocity(t, img, strength, eps2);
                        acc[0] += u[0];
                        acc[1] += u[1];
                        acc[2] += u[2];
                    }
                }
                v[0] += acc[0];
                v[1] += acc[1];
                v[2] += acc[2];
            });
            if step + 1 < p {
                let right = (me + 1) % p;
                let left = (me + p - 1) % p;
                circ = comm.sendrecv(right, circ, left, TAG + step as u64);
            }
        }
        vel
    }

    fn name(&self) -> &'static str {
        "periodic-exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::br::exact::ExactBrSolver;
    use beatnik_comm::World;

    const L: f64 = 4.0;

    #[test]
    fn zero_images_matches_plain_exact() {
        World::builder(2).run(|comm| {
            let pts: Vec<BrPoint> = (0..20)
                .map(|i| {
                    let t = i as f64;
                    BrPoint {
                        pos: [(t * 0.37).fract() * L, (t * 0.71).fract() * L, 0.1 * t.sin()],
                        strength: [(t * 0.29).fract() - 0.5, 0.3, 0.0],
                    }
                })
                .collect();
            let mine = &pts[comm.rank() * 10..comm.rank() * 10 + 10];
            let plain = ExactBrSolver.velocities(&comm, mine, 0.1);
            let periodic = PeriodicExactBrSolver::new([L, L])
                .with_images(0)
                .velocities(&comm, mine, 0.1);
            assert_eq!(plain, periodic);
        });
    }

    #[test]
    fn wraparound_pairs_interact_strongly() {
        World::builder(1).run(|comm| {
            // Two points separated by 0.2 *through the boundary* (3.9 apart
            // in-box). The periodic solver must see a near-field
            // interaction an order of magnitude stronger.
            let pts = [
                BrPoint {
                    pos: [0.05, 1.0, 0.0],
                    strength: [0.0, 1.0, 0.0],
                },
                BrPoint {
                    pos: [L - 0.15, 1.0, 0.0],
                    strength: [0.0, 1.0, 0.0],
                },
            ];
            let plain = ExactBrSolver.velocities(&comm, &pts, 0.01);
            let periodic = PeriodicExactBrSolver::new([L, L]).velocities(&comm, &pts, 0.01);
            let mag = |v: [f64; 3]| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
            assert!(
                mag(periodic[0]) > 10.0 * mag(plain[0]),
                "periodic {periodic:?} vs plain {plain:?}"
            );
        });
    }

    #[test]
    fn translation_by_one_period_is_invariant() {
        World::builder(2).run(|comm| {
            let pts: Vec<BrPoint> = (0..16)
                .map(|i| {
                    let t = i as f64;
                    BrPoint {
                        pos: [(t * 0.43).fract() * L, (t * 0.67).fract() * L, 0.2 * t.cos()],
                        strength: [0.1, (t * 0.19).fract() - 0.5, 0.05],
                    }
                })
                .collect();
            // Shift *one* target by a full period in x: its velocity from
            // the periodic sum must be (nearly) unchanged — each source's
            // image lattice looks identical from x and x+L up to the
            // outermost truncated shell, so the defect shrinks as the
            // shell count grows.
            let mine = &pts[comm.rank() * 8..comm.rank() * 8 + 8];
            let defect = |m: usize| -> f64 {
                let solver = PeriodicExactBrSolver::new([L, L]).with_images(m);
                let base = solver.velocities(&comm, mine, 0.1);
                let mut shifted = mine.to_vec();
                shifted[0].pos[0] += L;
                let moved = solver.velocities(&comm, &shifted, 0.1);
                (0..3)
                    .map(|k| (base[0][k] - moved[0][k]).powi(2))
                    .sum::<f64>()
                    .sqrt()
            };
            let d1 = defect(1);
            let d4 = defect(4);
            assert!(d4 < 0.35 * d1, "defect must shrink with shells: {d1} vs {d4}");
        });
    }

    #[test]
    fn image_sum_converges_with_shell_count() {
        World::builder(1).run(|comm| {
            let pts: Vec<BrPoint> = (0..12)
                .map(|i| {
                    let t = i as f64;
                    BrPoint {
                        pos: [(t * 0.37).fract() * L, (t * 0.71).fract() * L, 0.0],
                        strength: [0.2, -0.1, 0.0],
                    }
                })
                .collect();
            let run = |m: usize| {
                PeriodicExactBrSolver::new([L, L])
                    .with_images(m)
                    .velocities(&comm, &pts, 0.1)
            };
            let v1 = run(1);
            let v2 = run(2);
            let v3 = run(3);
            let diff = |a: &Vec<[f64; 3]>, b: &Vec<[f64; 3]>| -> f64 {
                a.iter()
                    .zip(b)
                    .map(|(x, y)| (0..3).map(|k| (x[k] - y[k]).powi(2)).sum::<f64>())
                    .sum::<f64>()
                    .sqrt()
            };
            let d12 = diff(&v1, &v2);
            let d23 = diff(&v2, &v3);
            assert!(d23 < d12, "image sum must converge: {d12} vs {d23}");
        });
    }

    #[test]
    #[should_panic(expected = "periods must be positive")]
    fn bad_periods_rejected() {
        let _ = PeriodicExactBrSolver::new([0.0, 1.0]);
    }
}
