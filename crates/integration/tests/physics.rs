//! Cross-crate physics validation: the assembled solver reproduces
//! linear Rayleigh–Taylor theory, and all solver orders agree with each
//! other and across rank counts.

use beatnik_comm::World;
use beatnik_core::solver::BrChoice;
use beatnik_core::{
    Diagnostics, InitialCondition, Order, Params, Solver, SolverConfig,
};
use beatnik_dfft::FftConfig;
use beatnik_mesh::{BoundaryCondition, SurfaceMesh};
use std::f64::consts::PI;

const L: f64 = 2.0 * PI;

fn params() -> Params {
    Params {
        atwood: 0.5,
        gravity: 2.0,
        mu: 0.0,
        epsilon: 0.13,
        cutoff: 10.0,
        dt: 5e-3,
        ..Params::default()
    }
}

fn config(order: Order, br: BrChoice, amplitude: f64) -> SolverConfig {
    SolverConfig {
        order,
        br,
        params: params(),
        fft: FftConfig::default(),
        ic: InitialCondition::SingleMode {
            amplitude,
            modes: [1.0, 1.0],
        },
    }
}

/// Fit the exponential growth rate of the (1,1) mode from a run:
/// amplitude(t) = a0·cosh(σt) → late-time slope of ln(a) approaches σ.
fn measure_growth(order: Order, br: BrChoice, n: usize, steps: usize) -> f64 {
    let out = World::builder(4).run(move |comm| {
        let mesh = SurfaceMesh::new(&comm, [n, n], [true, true], 2, [0.0, 0.0], [L, L]);
        let bc = BoundaryCondition::Periodic { periods: [L, L] };
        let mut solver = Solver::new(mesh, bc, config(order, br, 1e-5));
        let mut series = Vec::new();
        solver.run(steps, |step, pm| {
            series.push((step as f64 * 5e-3, Diagnostics::compute(pm).amplitude));
        });
        series
    });
    let series = &out[0];
    // Least-squares slope of ln(a) over the second half (where cosh ≈
    // exp/2 and transients from the zero-vorticity start have decayed).
    let half = &series[series.len() / 2..];
    let n = half.len() as f64;
    let sx: f64 = half.iter().map(|p| p.0).sum();
    let sy: f64 = half.iter().map(|p| p.1.ln()).sum();
    let sxx: f64 = half.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = half.iter().map(|p| p.0 * p.1.ln()).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// σ = √(A·g·|k|) for the (1,1) mode on a 2π-periodic domain: |k| = √2.
fn sigma_theory() -> f64 {
    (0.5 * 2.0 * (2.0f64).sqrt()).sqrt()
}

#[test]
fn low_order_growth_matches_linear_theory() {
    let sigma = measure_growth(Order::Low, BrChoice::None, 32, 500);
    let theory = sigma_theory();
    let rel = (sigma - theory).abs() / theory;
    assert!(
        rel < 0.05,
        "low-order growth {sigma:.4} vs theory {theory:.4} (rel {rel:.3})"
    );
}

#[test]
fn high_order_growth_is_rt_unstable_at_the_right_scale() {
    // The desingularized discrete Birkhoff–Rott operator grows slower
    // than the ideal σ (Krasny smoothing); it must still be within a
    // factor-two band of theory and clearly unstable.
    let sigma = measure_growth(Order::High, BrChoice::Exact, 24, 300);
    let theory = sigma_theory();
    assert!(
        sigma > 0.4 * theory && sigma < 1.3 * theory,
        "high-order growth {sigma:.4} vs theory {theory:.4}"
    );
}

#[test]
fn medium_order_growth_is_rt_unstable_at_the_right_scale() {
    let sigma = measure_growth(Order::Medium, BrChoice::Exact, 24, 300);
    let theory = sigma_theory();
    assert!(
        sigma > 0.4 * theory && sigma < 1.3 * theory,
        "medium-order growth {sigma:.4} vs theory {theory:.4}"
    );
}

#[test]
fn stable_stratification_does_not_grow() {
    // Negative Atwood number (light over heavy): the interface
    // oscillates instead of growing.
    let out = World::builder(2).run(|comm| {
        let mesh = SurfaceMesh::new(&comm, [24, 24], [true, true], 2, [0.0, 0.0], [L, L]);
        let bc = BoundaryCondition::Periodic { periods: [L, L] };
        let mut cfg = config(Order::Low, BrChoice::None, 1e-4);
        cfg.params.atwood = -0.5;
        let mut solver = Solver::new(mesh, bc, cfg);
        let a0 = Diagnostics::compute(solver.problem()).amplitude;
        solver.run(200, |_, _| {});
        let a1 = Diagnostics::compute(solver.problem()).amplitude;
        (a0, a1)
    });
    let (a0, a1) = out[0];
    assert!(
        a1 < 2.0 * a0,
        "stable configuration must not grow: {a0:.3e} -> {a1:.3e}"
    );
}

#[test]
fn solver_is_deterministic_across_rank_counts_high_order() {
    // The exact-BR stencil path is order-independent in its reductions:
    // P=1 and P=4 runs agree to tight FP tolerance.
    let run = |p: usize| -> (f64, f64) {
        let out = World::builder(p).run(|comm| {
            let mesh =
                SurfaceMesh::new(&comm, [16, 16], [true, true], 2, [0.0, 0.0], [L, L]);
            let bc = BoundaryCondition::Periodic { periods: [L, L] };
            let mut solver = Solver::new(mesh, bc, config(Order::High, BrChoice::Exact, 1e-3));
            solver.run(5, |_, _| {});
            let d = Diagnostics::compute(solver.problem());
            (d.amplitude, d.enstrophy)
        });
        out[0]
    };
    let (a1, e1) = run(1);
    let (a4, e4) = run(4);
    assert!((a1 - a4).abs() < 1e-9 * a1.max(1e-30), "{a1} vs {a4}");
    assert!((e1 - e4).abs() < 1e-9 * e1.max(1e-30), "{e1} vs {e4}");
}

#[test]
fn exact_and_large_cutoff_runs_agree() {
    let run = |br: BrChoice| -> f64 {
        let out = World::builder(2).run(move |comm| {
            let mesh =
                SurfaceMesh::new(&comm, [16, 16], [true, true], 2, [0.0, 0.0], [L, L]);
            let bc = BoundaryCondition::Periodic { periods: [L, L] };
            let mut solver = Solver::new(mesh, bc, config(Order::High, br, 1e-3));
            solver.run(5, |_, _| {});
            Diagnostics::compute(solver.problem()).amplitude
        });
        out[0]
    };
    let exact = run(BrChoice::Exact);
    let cutoff = run(BrChoice::Cutoff {
        bounds: ([-1.0, -1.0, -2.0], [L + 1.0, L + 1.0, 2.0]),
    });
    assert!(
        (exact - cutoff).abs() < 1e-9 * exact,
        "{exact} vs {cutoff}"
    );
}

#[test]
fn mean_interface_height_is_conserved() {
    // Incompressibility: the volume below the interface — hence the mean
    // height on a periodic problem — must stay constant as the
    // instability grows. This catches sign/consistency errors in the
    // velocity field that pointwise tests miss.
    let out = World::builder(4).run(|comm| {
        let mesh = SurfaceMesh::new(&comm, [24, 24], [true, true], 2, [0.0, 0.0], [L, L]);
        let bc = BoundaryCondition::Periodic { periods: [L, L] };
        let mut solver = Solver::new(mesh, bc, config(Order::Low, BrChoice::None, 1e-3));
        let before = Diagnostics::compute(solver.problem()).mean_height;
        solver.run(100, |_, _| {});
        let after = Diagnostics::compute(solver.problem());
        (before, after.mean_height, after.amplitude)
    });
    let (before, after, amplitude) = out[0];
    assert!(
        (after - before).abs() < 1e-6 * amplitude,
        "mean height drifted: {before:.3e} -> {after:.3e} (amplitude {amplitude:.3e})"
    );
}
