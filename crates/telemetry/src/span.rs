//! The span record and its vocabulary of operation kinds.

/// Communication operations a span can describe.
///
/// These mirror the runtime's surface rather than `beatnik-comm`'s
/// `OpKind` counters: the nonblocking post (`Isend`/`Irecv`) and the
/// blocking completion (`Wait`/`WaitAll`) are distinct here because
/// the whole point of a timeline is separating the cheap post from
/// the time spent blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CommOp {
    /// Blocking buffered send (returns as soon as the envelope is queued).
    Send,
    /// Nonblocking pooled send post.
    Isend,
    /// Blocking receive (includes all time blocked in the mailbox).
    Recv,
    /// Nonblocking receive post (instant: marks the posting time).
    Irecv,
    /// Blocking wait on a single receive request.
    Wait,
    /// Blocking wait on a batch of requests.
    WaitAll,
    Barrier,
    Broadcast,
    Reduce,
    Allreduce,
    Gather,
    Allgather,
    Scatter,
    Alltoall,
    Alltoallv,
    Scan,
    Exscan,
    ReduceScatter,
}

impl CommOp {
    /// Spans of this kind represent time the rank could not compute:
    /// blocked in a receive/wait or inside a collective. Posts and
    /// buffered sends return immediately and do not count.
    pub fn is_blocking(self) -> bool {
        !matches!(self, CommOp::Send | CommOp::Isend | CommOp::Irecv)
    }

    /// True for collective operations (used by the skew analysis).
    pub fn is_collective(self) -> bool {
        matches!(
            self,
            CommOp::Barrier
                | CommOp::Broadcast
                | CommOp::Reduce
                | CommOp::Allreduce
                | CommOp::Gather
                | CommOp::Allgather
                | CommOp::Scatter
                | CommOp::Alltoall
                | CommOp::Alltoallv
                | CommOp::Scan
                | CommOp::Exscan
                | CommOp::ReduceScatter
        )
    }

    /// Stable lowercase name (used in trace exports and summaries).
    pub fn name(self) -> &'static str {
        match self {
            CommOp::Send => "send",
            CommOp::Isend => "isend",
            CommOp::Recv => "recv",
            CommOp::Irecv => "irecv",
            CommOp::Wait => "wait",
            CommOp::WaitAll => "wait_all",
            CommOp::Barrier => "barrier",
            CommOp::Broadcast => "broadcast",
            CommOp::Reduce => "reduce",
            CommOp::Allreduce => "allreduce",
            CommOp::Gather => "gather",
            CommOp::Allgather => "allgather",
            CommOp::Scatter => "scatter",
            CommOp::Alltoall => "alltoall",
            CommOp::Alltoallv => "alltoallv",
            CommOp::Scan => "scan",
            CommOp::Exscan => "exscan",
            CommOp::ReduceScatter => "reduce_scatter",
        }
    }

    /// Every operation kind, in export order.
    pub const ALL: [CommOp; 18] = [
        CommOp::Send,
        CommOp::Isend,
        CommOp::Recv,
        CommOp::Irecv,
        CommOp::Wait,
        CommOp::WaitAll,
        CommOp::Barrier,
        CommOp::Broadcast,
        CommOp::Reduce,
        CommOp::Allreduce,
        CommOp::Gather,
        CommOp::Allgather,
        CommOp::Scatter,
        CommOp::Alltoall,
        CommOp::Alltoallv,
        CommOp::Scan,
        CommOp::Exscan,
        CommOp::ReduceScatter,
    ];
}

/// What a span describes: a communication operation or a named
/// algorithmic phase (solver step, FFT reshape, halo exchange, ...).
///
/// Phase names are `&'static str` so recording a span never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    Op(CommOp),
    Phase(&'static str),
}

impl SpanKind {
    /// Display name for exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Op(op) => op.name(),
            SpanKind::Phase(p) => p,
        }
    }

    /// Chrome-trace category: `"comm"` or `"phase"`.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Op(_) => "comm",
            SpanKind::Phase(_) => "phase",
        }
    }
}

/// Codes identifying the collective algorithm a span executed, for the
/// `algo` field of [`Span`]. Kept as small integers (not an enum) so
/// `Span` stays `Copy` + fixed-size and the comm crate can stamp them
/// without telemetry depending on comm types.
pub mod algos {
    /// No algorithm recorded (point-to-point ops, rooted collectives).
    pub const NONE: u8 = 0;
    /// Pairwise-exchange alltoall (`p - 1` synchronized rounds).
    pub const PAIRWISE: u8 = 1;
    /// Direct post-all-then-receive alltoall.
    pub const DIRECT: u8 = 2;
    /// Bruck log-P alltoall for small blocks.
    pub const BRUCK: u8 = 3;

    /// Stable lowercase name for trace exports; `None` for [`NONE`]
    /// and unknown codes.
    pub fn name(code: u8) -> Option<&'static str> {
        match code {
            PAIRWISE => Some("pairwise"),
            DIRECT => Some("direct"),
            BRUCK => Some("bruck"),
            _ => None,
        }
    }
}

/// One recorded interval on a rank's timeline. `Copy` and fixed-size
/// so the ring buffer is a flat preallocated array.
///
/// Times are nanoseconds since the world's shared epoch (the same
/// monotonic clock on every rank, so cross-rank skew is meaningful).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    pub kind: SpanKind,
    /// Peer rank (destination for sends, source for receives, root for
    /// rooted collectives); `-1` when not applicable.
    pub peer: i64,
    /// Message-matching tag, `0` when not applicable.
    pub tag: u64,
    /// Payload bytes this rank contributed to / received from the op.
    pub bytes: u64,
    /// Collective algorithm code from [`algos`]; `algos::NONE` when not
    /// applicable.
    pub algo: u8,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl Span {
    /// Duration in nanoseconds (0 for instant spans).
    #[inline]
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Duration in seconds.
    pub fn dur_s(&self) -> f64 {
        self.dur_ns() as f64 * 1e-9
    }

    /// Whether `inner` lies within this span (inclusive bounds) and is
    /// not the very same interval.
    pub fn contains(&self, inner: &Span) -> bool {
        self.start_ns <= inner.start_ns
            && inner.end_ns <= self.end_ns
            && (self.start_ns, self.end_ns) != (inner.start_ns, inner.end_ns)
    }
}

impl Default for Span {
    fn default() -> Self {
        Span {
            kind: SpanKind::Phase(""),
            peer: -1,
            tag: 0,
            bytes: 0,
            algo: algos::NONE,
            start_ns: 0,
            end_ns: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_classification() {
        assert!(!CommOp::Send.is_blocking());
        assert!(!CommOp::Isend.is_blocking());
        assert!(!CommOp::Irecv.is_blocking());
        assert!(CommOp::Recv.is_blocking());
        assert!(CommOp::Wait.is_blocking());
        assert!(CommOp::Allreduce.is_blocking());
        for op in CommOp::ALL {
            assert_eq!(
                op.is_collective(),
                !matches!(
                    op,
                    CommOp::Send
                        | CommOp::Isend
                        | CommOp::Recv
                        | CommOp::Irecv
                        | CommOp::Wait
                        | CommOp::WaitAll
                ),
            );
        }
    }

    #[test]
    fn containment_is_strict_on_identical_intervals() {
        let outer = Span {
            start_ns: 10,
            end_ns: 50,
            ..Span::default()
        };
        let inner = Span {
            start_ns: 20,
            end_ns: 30,
            ..Span::default()
        };
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(!outer.contains(&outer));
    }
}
