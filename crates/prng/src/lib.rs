//! # beatnik-prng — small deterministic PRNG
//!
//! The repo needs randomness for two things only: seeding the
//! multi-mode initial condition identically on every rank, and driving
//! randomized tests. Neither needs cryptographic quality — they need
//! **determinism across platforms and rank counts** and zero external
//! dependencies (hermetic builds). This is `xoshiro256**` seeded through
//! SplitMix64, the standard non-crypto pairing, with the handful of
//! distribution helpers call sites use.

/// A deterministic 64-bit PRNG (`xoshiro256**`).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed deterministically from a single integer (SplitMix64 expansion,
    /// so nearby seeds give uncorrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        range.start + (range.end - range.start) * self.next_f64()
    }

    /// Uniform `usize` in `[lo, hi)` (simple modulo; fine for test-sized
    /// ranges where the bias is ~2⁻⁶⁴).
    pub fn gen_index(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + (self.next_u64() % (range.end - range.start) as u64) as usize
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.gen_index(0..i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_varies() {
        let mut r = Rng::seed_from_u64(123);
        let xs: Vec<f64> = (0..1000).map(|_| r.gen_range(-1.0..1.0)).collect();
        assert!(xs.iter().all(|&x| (-1.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.1, "{mean}");
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn gen_index_covers_range() {
        let mut r = Rng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[r.gen_index(0..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }
}
